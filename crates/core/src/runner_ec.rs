//! The edge-cut (Cyclops) distributed runner: Algorithm 1 plus the three
//! fault-tolerance modes and both recovery strategies.
//!
//! One thread per simulated node executes [`node_main`]; hot standbys block
//! in [`standby_main`] until a Rebirth (or checkpoint recovery) adopts them.
//! All graph state lives in the node threads; the driver only assembles
//! reports and final values.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use imitator_cluster::{
    BarrierOutcome, Cluster, Envelope, FailPoint, FailureInjector, FailurePlan, NodeCtx, NodeId,
};
use imitator_engine::{
    ec_commit, ec_compute_par, CopyKind, Degrees, EcLocalGraph, EcVertex, FtPlan, MasterMeta,
    RemoteEdge, VertexProgram,
};
use imitator_graph::{Graph, Vid};
use imitator_metrics::{CommKind, CommStats, MemSize, Stopwatch};
use imitator_partition::EdgeCut;
use imitator_storage::codec::{Decode, Encode};
use imitator_storage::Dfs;

use crate::ckpt;
use crate::msg::{
    EcMsg, EcRebirthBatch, EcRecoverEntry, MirrorUpdate, Promotion, ReplicaGrant, VertexSync,
};
use crate::plan::compute_ft_plan;
use crate::report::{RecoveryReport, RunReport};
use crate::rt::{merge_outcomes, NodeOutcome, NodeState};
use crate::{FtMode, RecoveryStrategy, RunConfig};

/// How long recovery waits for a peer's message before concluding the
/// protocol is wedged (a bug, not an injected failure).
const RECOVERY_PATIENCE: Duration = Duration::from_secs(30);

struct Shared<P: VertexProgram> {
    prog: Arc<P>,
    degrees: Arc<Degrees>,
    plan: Arc<FtPlan>,
    owners: Arc<Vec<u32>>,
    injector: Arc<FailureInjector>,
    dfs: Dfs,
    cfg: RunConfig,
}

type Ctx<V> = NodeCtx<EcMsg<V>>;
type St<V> = NodeState<EcMsg<V>>;

/// Runs a vertex program over `g` on a simulated cluster partitioned by
/// `cut`, under the configured fault-tolerance mode, with the scheduled
/// failures injected.
///
/// Returns the merged [`RunReport`]; `values` holds every vertex's final
/// master value.
///
/// # Panics
///
/// Panics if `cfg.num_nodes != cut.num_parts()`, if a failure is injected
/// with `FtMode::None`, or if Rebirth/Checkpoint recovery runs out of
/// standby machines.
pub fn run_edge_cut<P>(
    g: &Graph,
    cut: &EdgeCut,
    prog: Arc<P>,
    cfg: RunConfig,
    failures: Vec<FailurePlan>,
    dfs: Dfs,
) -> RunReport<P::Value>
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    assert_eq!(
        cfg.num_nodes,
        cut.num_parts(),
        "config node count must match the partitioning"
    );
    let degrees = Arc::new(Degrees::of(g));
    let plan = Arc::new(match cfg.ft {
        FtMode::Replication {
            tolerance,
            selfish_opt,
            ..
        } => compute_ft_plan(
            g,
            cut,
            tolerance,
            selfish_opt,
            prog.selfish_compatible(),
            0xF7,
        ),
        _ => FtPlan::none(g.num_vertices()),
    });
    let extra_replicas = plan.extra_replica_count();
    let lgs = imitator_engine::build_edge_cut_graphs(g, cut, &plan, prog.as_ref(), &degrees);
    let mem_bytes: Vec<usize> = lgs.iter().map(MemSize::mem_bytes).collect();
    let owners: Arc<Vec<u32>> = Arc::new(g.vertices().map(|v| cut.owner(v) as u32).collect());
    let injector = Arc::new(FailureInjector::new());
    for f in failures {
        injector.schedule(f);
    }
    let shared = Arc::new(Shared {
        prog,
        degrees,
        plan,
        owners,
        injector,
        dfs,
        cfg,
    });
    let cluster: Cluster<EcMsg<P::Value>> =
        Cluster::new(cfg.num_nodes, cfg.standbys, cfg.detection_delay);

    let start = Instant::now();
    let mut handles = Vec::new();
    for (p, lg) in lgs.into_iter().enumerate() {
        let ctx = cluster.take_ctx(NodeId::from_index(p));
        let shared = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            let mut st = NodeState::new(
                shared.cfg.num_nodes,
                Instant::now(),
                shared.cfg.sync_suppress,
            );
            if matches!(shared.cfg.ft, FtMode::Checkpoint { .. }) {
                let sw = Stopwatch::start();
                shared.dfs.write(
                    &format!("ec/meta/{}", ctx.id().raw()),
                    ckpt::encode_ec_graph(&lg),
                );
                st.ckpt_time += sw.elapsed();
            }
            node_main(ctx, lg, &shared, st)
        }));
    }
    let mut standby_handles = Vec::new();
    for _ in 0..cfg.standbys {
        let cluster = cluster.clone();
        let shared = Arc::clone(&shared);
        standby_handles.push(std::thread::spawn(move || standby_main(&cluster, &shared)));
    }

    let mut outcomes: Vec<NodeOutcome<EcLocalGraph<P::Value>>> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect();
    cluster.shutdown_standbys();
    for h in standby_handles {
        if let Some(o) = h.join().expect("standby thread panicked") {
            outcomes.push(o);
        }
    }
    let elapsed = start.elapsed();

    let (mut report, graphs) = merge_outcomes(
        outcomes,
        elapsed,
        mem_bytes,
        extra_replicas,
        cluster.comm_breakdown(),
    );
    let mut values: Vec<Option<P::Value>> = vec![None; g.num_vertices()];
    for lg in &graphs {
        for v in lg.verts.iter().filter(|v| v.is_master()) {
            values[v.vid.index()] = Some(v.value.clone());
        }
    }
    report.values = values
        .into_iter()
        .enumerate()
        .map(|(i, v)| v.unwrap_or_else(|| panic!("vertex v{i} has no master after run")))
        .collect();
    report
}

fn standby_main<P>(
    cluster: &Cluster<EcMsg<P::Value>>,
    shared: &Arc<Shared<P>>,
) -> Option<NodeOutcome<EcLocalGraph<P::Value>>>
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let ctx = cluster.wait_standby(Duration::from_secs(600))?;
    let mut st = NodeState::new(
        shared.cfg.num_nodes,
        Instant::now(),
        shared.cfg.sync_suppress,
    );
    let lg = match shared.cfg.ft {
        FtMode::Replication { .. } => rebirth_newbie(&ctx, shared, &mut st),
        FtMode::Checkpoint { .. } => ckpt_newbie(&ctx, shared, &mut st),
        FtMode::None => unreachable!("standbys are never dispatched without fault tolerance"),
    };
    Some(node_main(ctx, lg, shared, st))
}

/// Algorithm 1: the synchronous execution flow with failure handling.
fn node_main<P>(
    ctx: Ctx<P::Value>,
    mut lg: EcLocalGraph<P::Value>,
    shared: &Arc<Shared<P>>,
    mut st: St<P::Value>,
) -> NodeOutcome<EcLocalGraph<P::Value>>
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let me = ctx.id();
    st.sync_filter.set_domain(lg.verts.len() as u32);
    // Reusable per-destination sync-batch buffers (indexed by node, so send
    // order is deterministic) — allocated once, drained every iteration.
    let mut sync_batches: Vec<Vec<VertexSync<P::Value>>> =
        (0..shared.cfg.num_nodes).map(|_| Vec::new()).collect();
    let mut ft_entries: Vec<u64> = vec![0; shared.cfg.num_nodes];
    loop {
        if st.iter >= shared.cfg.max_iters {
            break;
        }
        if shared
            .injector
            .should_fail(me, st.iter, FailPoint::BeforeBarrier)
        {
            ctx.die();
            return NodeOutcome::from_state(None, st);
        }
        let iter_sw = Stopwatch::start();
        let mut sw = Stopwatch::start();

        // Compute (line 5): gather + apply fused over the sparse frontier,
        // chunked across the node's worker pool.
        let updates = ec_compute_par(
            &lg,
            shared.prog.as_ref(),
            &shared.degrees,
            st.iter,
            shared.cfg.threads_per_node,
        );
        st.phases.record("compute", sw.lap());

        // Communicate (line 6).
        send_syncs(
            &ctx,
            &lg,
            &updates,
            shared,
            &mut st,
            &mut sync_batches,
            &mut ft_entries,
        );
        st.phases.record("send", sw.lap());

        // Enter barrier (line 7).
        let (outcome, _) = ctx.enter_barrier_sum(0);
        st.phases.record("barrier", sw.lap());
        if let BarrierOutcome::Failed(dead) = outcome {
            // Roll back (line 9): discard staged updates and stale traffic.
            // The discarded syncs were never applied anywhere, so the
            // suppression filter forgets them too.
            drop(updates);
            st.sync_filter.rollback();
            stash_non_sync(&ctx, &mut st);
            let resume = st.iter;
            recover(&ctx, &mut lg, shared, &mut st, &dead, resume);
            continue;
        }
        // The sync barrier passed: this iteration's syncs are the replicas'
        // new last-shipped state.
        st.sync_filter.commit();

        // Commit (line 14).
        if matches!(
            shared.cfg.ft,
            FtMode::Checkpoint {
                incremental: true,
                ..
            }
        ) {
            st.dirty.extend(updates.iter().map(|u| u.local));
        }
        let incoming = collect_syncs(&ctx, &mut st);
        let stats = ec_commit(&mut lg, shared.prog.as_ref(), updates, incoming);
        st.phases.record("commit", sw.lap());

        // Checkpoint inside the barrier window (§2.2).
        if let FtMode::Checkpoint {
            interval,
            incremental,
        } = shared.cfg.ft
        {
            if (st.iter + 1) % interval == 0 {
                let bytes = if incremental {
                    let mut dirty: Vec<u32> = st.dirty.drain().collect();
                    dirty.sort_unstable();
                    ckpt::encode_ec_snapshot_inc(&lg, st.iter + 1, &dirty)
                } else {
                    ckpt::encode_ec_snapshot(&lg, st.iter + 1)
                };
                shared
                    .dfs
                    .write(&format!("ec/ckpt/{}/{}", st.iter + 1, me.raw()), bytes);
                st.last_snapshot_iter = st.iter + 1;
                let d = sw.lap();
                st.ckpt_time += d;
                st.phases.record("ckpt", d);
            }
        }

        st.iter += 1;
        st.timeline.push((st.iter, st.start.elapsed()));

        // Leave barrier (line 16) doubling as the active-count all-reduce.
        let (outcome2, total_active) = ctx.enter_barrier_sum(stats.active_next as u64);
        st.phases.record("barrier", sw.lap());
        if st.iter <= st.replay_until {
            if let Some(r) = st.recoveries.last_mut() {
                r.replay += iter_sw.elapsed();
            }
        }
        if let BarrierOutcome::Failed(dead) = outcome2 {
            // Failure after commit (lines 17-19): no rollback.
            stash_non_sync(&ctx, &mut st);
            let resume = st.iter;
            recover(&ctx, &mut lg, shared, &mut st, &dead, resume);
            continue;
        }
        if total_active == 0 {
            // Converged: the job is over before any post-barrier crash can
            // strike (a machine lost after completion is outside the job's
            // lifetime and cannot be recovered by it).
            break;
        }
        if st.iter < shared.cfg.max_iters
            && shared
                .injector
                .should_fail(me, st.iter - 1, FailPoint::AfterBarrier)
        {
            ctx.die();
            return NodeOutcome::from_state(None, st);
        }
    }
    NodeOutcome::from_state(Some(lg), st)
}

/// Sends per-destination batched value syncs for this iteration's updates,
/// including the mirrors' dynamic state (value + scatter bit). Selfish
/// masters (§4.4) send nothing — their only replicas are FT replicas.
///
/// `batches`/`ft_entries` are node-indexed scratch buffers owned by the
/// caller's loop: no per-iteration hashing or map allocation, and sends go
/// out in deterministic node order.
#[allow(clippy::too_many_arguments)]
fn send_syncs<P>(
    ctx: &Ctx<P::Value>,
    lg: &EcLocalGraph<P::Value>,
    updates: &[imitator_engine::MasterUpdate<P::Value>],
    shared: &Arc<Shared<P>>,
    st: &mut St<P::Value>,
    batches: &mut [Vec<VertexSync<P::Value>>],
    ft_entries: &mut [u64],
) where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let mut suppressed = 0u64;
    for u in updates {
        let v = &lg.verts[u.local as usize];
        let i = v.vid.index();
        if *shared.plan.selfish.get(i).unwrap_or(&false) {
            continue;
        }
        let meta = v.meta.as_ref().expect("masters always carry full state");
        let staged = st.sync_filter.stage(u.local, &u.value, u.activate);
        for (&node, &rpos) in meta.replica_nodes.iter().zip(&meta.replica_positions) {
            if st.sync_filter.suppress(staged, node) {
                suppressed += 1;
                continue;
            }
            batches[node.index()].push(VertexSync {
                pos: rpos,
                value: u.value.clone(),
                activate: u.activate,
            });
            let extra = shared
                .plan
                .extra_replicas
                .get(i)
                .is_some_and(|e| e.contains(&node));
            if extra {
                ft_entries[node.index()] += 1;
            }
        }
    }
    st.note_suppressed(suppressed);
    for (n, batch) in batches.iter_mut().enumerate() {
        let ft = std::mem::take(&mut ft_entries[n]);
        if batch.is_empty() {
            continue;
        }
        let entries = batch.len() as u64;
        let bytes: u64 = batch
            .iter()
            .map(|s| {
                VertexSync::<P::Value>::wire_bytes(shared.prog.value_wire_bytes(&s.value)) as u64
            })
            .sum();
        st.comm.record(entries, bytes);
        if ft > 0 {
            // FT share estimated pro-rata on entry count.
            st.ft_comm.record(ft, bytes * ft / entries.max(1));
        }
        ctx.send_kind(
            NodeId::from_index(n),
            EcMsg::Sync(std::mem::take(batch)),
            bytes,
            CommKind::Sync,
        );
    }
}

/// Drains the inbox into `(position, value, activate)` replica updates,
/// stashing recovery-protocol messages for later. Syncs are
/// position-addressed by the sender, so no ID lookup happens here.
fn collect_syncs<V: Clone + Send + 'static>(ctx: &Ctx<V>, st: &mut St<V>) -> Vec<(u32, V, bool)> {
    let mut out = Vec::new();
    for env in ctx.drain() {
        match env.msg {
            EcMsg::Sync(batch) => {
                out.extend(batch.into_iter().map(|s| (s.pos, s.value, s.activate)));
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    out
}

/// On failure: discard the failed iteration's sync traffic, keep recovery
/// messages that may already have arrived from faster peers.
fn stash_non_sync<V: Send + 'static>(ctx: &Ctx<V>, st: &mut St<V>) {
    for env in ctx.drain() {
        if !matches!(env.msg, EcMsg::Sync(_)) {
            st.stash.push(env);
        }
    }
}

/// Pulls stashed + queued messages (recovery rounds are barrier-separated,
/// so everything for the current round is already queued).
fn round_msgs<V: Send + 'static>(ctx: &Ctx<V>, st: &mut St<V>) -> Vec<Envelope<EcMsg<V>>> {
    let mut v = std::mem::take(&mut st.stash);
    v.extend(ctx.drain());
    v
}

fn recover<P>(
    ctx: &Ctx<P::Value>,
    lg: &mut EcLocalGraph<P::Value>,
    shared: &Arc<Shared<P>>,
    st: &mut St<P::Value>,
    dead: &[NodeId],
    resume_iter: u64,
) where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    match shared.cfg.ft {
        FtMode::None => panic!("node failure injected with fault tolerance disabled"),
        FtMode::Checkpoint { .. } => ckpt_recover_survivor(ctx, lg, shared, st, dead, resume_iter),
        FtMode::Replication {
            recovery: RecoveryStrategy::Rebirth,
            ..
        } => rebirth_survivor(ctx, lg, shared, st, dead, resume_iter),
        FtMode::Replication {
            recovery: RecoveryStrategy::Migration,
            ..
        } => migrate(ctx, lg, shared, st, dead, resume_iter),
    }
    // Every recovery path may touch `active` bits directly; restore the
    // frontier invariant before the next superstep computes from it.
    lg.rebuild_active_frontier();
}

/// First surviving node in `meta`'s mirror-ID order — the one responsible
/// for recovering the master without any election traffic (§5.3.1).
fn responsible_mirror(meta: &MasterMeta, alive: &[bool]) -> Option<NodeId> {
    meta.mirror_nodes.iter().copied().find(|m| alive[m.index()])
}

// --------------------------------------------------------------------------
// Rebirth (§5.1)
// --------------------------------------------------------------------------

fn rebirth_survivor<P>(
    ctx: &Ctx<P::Value>,
    lg: &mut EcLocalGraph<P::Value>,
    shared: &Arc<Shared<P>>,
    st: &mut St<P::Value>,
    dead: &[NodeId],
    resume_iter: u64,
) where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let me = ctx.id();
    let survivors = st.mark_dead(dead);
    let num_survivors = survivors.len() as u32;

    // The leader hands each crashed identity to a hot standby *before*
    // entering the membership barrier, so the barrier cannot complete
    // without the newbies.
    if me == st.leader() {
        for &d in dead {
            assert!(
                ctx.cluster().dispatch_standby(d),
                "Rebirth recovery of {d} requires a hot standby"
            );
        }
    }
    ctx.enter_barrier();

    // Reloading (§5.1.1): scan local masters and mirrors, build one batch
    // per crashed node.
    let sw = Stopwatch::start();
    let mut batches: HashMap<NodeId, Vec<EcRecoverEntry<P::Value>>> = HashMap::new();
    for d in dead {
        batches.insert(*d, Vec::new());
    }
    for v in &lg.verts {
        match v.kind {
            CopyKind::Master => {
                let meta = v.meta.as_ref().expect("master meta");
                for &d in dead {
                    if let Some(rpos) = meta.replica_position_on(d) {
                        let kind = if meta.mirror_nodes.contains(&d) {
                            CopyKind::Mirror
                        } else {
                            CopyKind::Replica
                        };
                        batches.get_mut(&d).unwrap().push(EcRecoverEntry {
                            vid: v.vid,
                            pos: rpos,
                            kind,
                            master_node: me,
                            value: v.value.clone(),
                            last_activate: v.last_activate,
                            active: false,
                            in_edges: Vec::new(),
                            out_local: meta.replica_out_local_on(d),
                            meta: (kind == CopyKind::Mirror).then(|| meta.clone()),
                        });
                    }
                }
            }
            CopyKind::Mirror => {
                let meta = v.meta.as_ref().expect("mirror meta");
                if !dead.contains(&v.master_node) {
                    continue;
                }
                if responsible_mirror(meta, &st.alive) != Some(me) {
                    continue;
                }
                // Recover the master at its original position...
                batches
                    .get_mut(&v.master_node)
                    .unwrap()
                    .push(EcRecoverEntry {
                        vid: v.vid,
                        pos: meta.master_pos,
                        kind: CopyKind::Master,
                        master_node: v.master_node,
                        value: v.value.clone(),
                        last_activate: v.last_activate,
                        active: false,
                        in_edges: meta.in_edges_owner.clone(),
                        out_local: meta.out_local_owner.clone(),
                        meta: Some(meta.clone()),
                    });
                // ...and, under multiple failures, any of its replicas lost
                // on *other* crashed nodes.
                for &d in dead {
                    if d == v.master_node {
                        continue;
                    }
                    if let Some(rpos) = meta.replica_position_on(d) {
                        let kind = if meta.mirror_nodes.contains(&d) {
                            CopyKind::Mirror
                        } else {
                            CopyKind::Replica
                        };
                        batches.get_mut(&d).unwrap().push(EcRecoverEntry {
                            vid: v.vid,
                            pos: rpos,
                            kind,
                            master_node: v.master_node,
                            value: v.value.clone(),
                            last_activate: v.last_activate,
                            active: false,
                            in_edges: Vec::new(),
                            out_local: meta.replica_out_local_on(d),
                            meta: (kind == CopyKind::Mirror).then(|| meta.clone()),
                        });
                    }
                }
            }
            CopyKind::Replica => {}
        }
    }
    let mut recovered = 0u64;
    let mut recovered_edges = 0u64;
    let mut comm = CommStats::default();
    for (d, entries) in batches {
        recovered += entries.len() as u64;
        recovered_edges += entries.iter().map(|e| e.in_edges.len() as u64).sum::<u64>();
        let bytes: u64 = entries
            .iter()
            .map(|e| {
                EcRecoverEntry::<P::Value>::wire_bytes(
                    shared.prog.value_wire_bytes(&e.value),
                    e.in_edges.len(),
                    e.out_local.len(),
                ) as u64
            })
            .sum();
        comm.record(1, bytes);
        ctx.send_kind(
            d,
            EcMsg::Rebirth(Box::new(EcRebirthBatch {
                resume_iter,
                num_survivors,
                entries,
            })),
            bytes,
            CommKind::Recovery,
        );
    }
    let reload = sw.elapsed();
    ctx.enter_barrier();

    // Membership restored: the newbies carry the crashed identities.
    for d in dead {
        st.alive[d.index()] = true;
    }
    st.recoveries.push(RecoveryReport {
        strategy: "rebirth",
        failed_nodes: dead.len(),
        reload,
        reconstruct: Duration::ZERO,
        replay: Duration::ZERO,
        vertices_recovered: recovered,
        edges_recovered: recovered_edges,
        comm,
    });
}

fn rebirth_newbie<P>(
    ctx: &Ctx<P::Value>,
    shared: &Arc<Shared<P>>,
    st: &mut St<P::Value>,
) -> EcLocalGraph<P::Value>
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let me = ctx.id();
    ctx.enter_barrier(); // membership barrier

    // Reloading: receive one batch from every survivor; placement is
    // position-addressed, so reconstruction happens on the fly (§5.1.2).
    let sw = Stopwatch::start();
    let mut lg: EcLocalGraph<P::Value> = EcLocalGraph::empty(me);
    let mut got = 0u32;
    let mut expected: Option<u32> = None;
    let mut resume_iter = 0u64;
    while expected.is_none_or(|e| got < e) {
        let env = ctx
            .recv_timeout(RECOVERY_PATIENCE)
            .expect("rebirth batch from survivor");
        match env.msg {
            EcMsg::Rebirth(batch) => {
                expected = Some(batch.num_survivors);
                resume_iter = batch.resume_iter;
                got += 1;
                for e in batch.entries {
                    lg.insert_at(
                        e.pos,
                        EcVertex {
                            vid: e.vid,
                            kind: e.kind,
                            master_node: e.master_node,
                            value: e.value,
                            active: e.active,
                            next_active: false,
                            last_activate: e.last_activate,
                            in_edges: e.in_edges,
                            out_local: e.out_local,
                            meta: e.meta,
                        },
                    );
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    let reload = sw.elapsed();

    // Reconstruction is implicit; validate the rebuilt layout.
    let mut sw = Stopwatch::start();
    lg.debug_validate();
    let reconstruct = sw.lap();

    // Replay (§5.1.3): re-run the activation operations recorded in the
    // synchronised scatter bits, then recompute selfish masters (§4.4).
    // Resuming at iteration 0 means no scatter bit exists yet: activation
    // comes from the program's initial active set instead.
    for pos in 0..lg.verts.len() {
        if lg.verts[pos].last_activate {
            let targets = std::mem::take(&mut lg.verts[pos].out_local);
            for &t in &targets {
                lg.verts[t as usize].active = true;
            }
            lg.verts[pos].out_local = targets;
        }
    }
    if resume_iter == 0 {
        for v in lg.verts.iter_mut().filter(|v| v.is_master()) {
            if shared.prog.initially_active(v.vid) {
                v.active = true;
            }
        }
    }
    let selfish_positions: Vec<usize> = lg
        .verts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_master() && *shared.plan.selfish.get(v.vid.index()).unwrap_or(&false))
        .map(|(i, _)| i)
        .collect();
    for pos in selfish_positions {
        let v = &lg.verts[pos];
        let mut acc: Option<P::Accum> = None;
        for &(src, w) in &v.in_edges {
            let c = shared.prog.gather(w, &lg.verts[src as usize].value);
            acc = Some(match acc {
                None => c,
                Some(a) => shared.prog.combine(a, c),
            });
        }
        let new = shared.prog.apply(v.vid, &v.value, acc, &shared.degrees);
        lg.verts[pos].value = new;
    }
    lg.rebuild_active_frontier();
    let replay = sw.lap();

    st.iter = resume_iter;
    st.recoveries.push(RecoveryReport {
        strategy: "rebirth",
        failed_nodes: 1,
        reload,
        reconstruct,
        replay,
        vertices_recovered: lg.verts.len() as u64,
        edges_recovered: lg.verts.iter().map(|v| v.in_edges.len() as u64).sum(),
        comm: CommStats::default(),
    });
    ctx.enter_barrier(); // reconstruction barrier
    lg
}

// --------------------------------------------------------------------------
// Migration (§5.2)
// --------------------------------------------------------------------------

#[allow(clippy::too_many_lines)]
fn migrate<P>(
    ctx: &Ctx<P::Value>,
    lg: &mut EcLocalGraph<P::Value>,
    shared: &Arc<Shared<P>>,
    st: &mut St<P::Value>,
    dead: &[NodeId],
    resume_iter: u64,
) where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let me = ctx.id();
    let survivors = st.mark_dead(dead);
    let others: Vec<NodeId> = survivors.iter().copied().filter(|&n| n != me).collect();
    let tolerance = match shared.cfg.ft {
        FtMode::Replication { tolerance, .. } => tolerance,
        _ => unreachable!("migrate requires replication FT"),
    };
    let mut comm = CommStats::default();
    let mut recovered = 0u64;
    let mut recovered_edges = 0u64;
    let sw_total = Stopwatch::start();

    // ---- R1: promote local mirrors whose master died (lowest surviving
    //      mirror wins), announce promotions.
    let mut promotions: Vec<Promotion> = Vec::new();
    // (position, [(src vid, weight)]) of masters promoted here, to wire in R4.
    let mut pending_wire: Vec<(u32, Vec<(Vid, f32)>)> = Vec::new();
    // Masters whose meta changed (need a final meta refresh in R7).
    let mut dirty_masters: HashSet<u32> = HashSet::new();
    for pos in 0..lg.verts.len() {
        let v = &lg.verts[pos];
        match v.kind {
            CopyKind::Mirror if dead.contains(&v.master_node) => {
                let meta = v.meta.as_ref().expect("mirror meta");
                if responsible_mirror(meta, &st.alive) != Some(me) {
                    continue;
                }
                let old_master = v.master_node;
                let old_pos = meta.master_pos;
                let srcs: Vec<(Vid, f32)> = meta
                    .in_edge_srcs
                    .iter()
                    .zip(&meta.in_edges_owner)
                    .map(|(&s, &(_, w))| (s, w))
                    .collect();
                let vid = v.vid;
                let v = &mut lg.verts[pos];
                v.kind = CopyKind::Master;
                v.master_node = me;
                v.active = false;
                let meta = v.meta.as_mut().unwrap();
                meta.master_pos = pos as u32;
                meta.purge_node(me);
                for &d in dead {
                    meta.purge_node(d);
                }
                meta.in_edges_owner.clear();
                promotions.push(Promotion {
                    vid,
                    new_master: me,
                    new_pos: pos as u32,
                    old_node: old_master,
                    old_pos,
                });
                pending_wire.push((pos as u32, srcs));
                dirty_masters.insert(pos as u32);
                st.overlay.insert(vid, me);
                recovered += 1;
            }
            CopyKind::Master => {
                // Purge crashed replica locations from the location tables.
                let v = &mut lg.verts[pos];
                let meta = v.meta.as_mut().expect("master meta");
                let before = meta.replica_nodes.len() + meta.mirror_nodes.len();
                for &d in dead {
                    meta.purge_node(d);
                }
                if meta.replica_nodes.len() + meta.mirror_nodes.len() != before {
                    dirty_masters.insert(pos as u32);
                }
            }
            _ => {}
        }
    }
    for &n in &others {
        let bytes = (promotions.len() * 20) as u64;
        comm.record(1, bytes);
        ctx.send_kind(
            n,
            EcMsg::Promote(promotions.clone()),
            bytes,
            CommKind::Recovery,
        );
    }
    ctx.enter_barrier();

    // ---- R2: apply promotions; fix location tables; request replicas for
    //      promoted masters' missing in-edge sources.
    // Promotions indexed by (dead node, old position) and by vid.
    let mut promo_by_old: HashMap<(NodeId, u32), Promotion> = HashMap::new();
    let mut all_promos: Vec<Promotion> = promotions.clone();
    for env in round_msgs(ctx, st) {
        match env.msg {
            EcMsg::Promote(batch) => all_promos.extend(batch),
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    for p in &all_promos {
        promo_by_old.insert((p.old_node, p.old_pos), *p);
        st.overlay.insert(p.vid, p.new_master);
        if p.new_master == me {
            continue; // own promotions already fixed
        }
        if let Some(pos) = lg.position(p.vid) {
            let v = &mut lg.verts[pos as usize];
            v.master_node = p.new_master;
            if let Some(meta) = v.meta.as_mut() {
                meta.master_pos = p.new_pos;
                for &d in dead {
                    meta.purge_node(d);
                }
                meta.purge_node(p.new_master);
            }
        }
    }
    // Fix consumer tables. (a) out_remote entries pointing at a crashed node
    // follow the consumer to its promotion target; entries landing on this
    // node become local links (wired in R4). (b) A freshly promoted master's
    // old co-located consumers (positions on the crashed node) become remote
    // links too.
    for pos in 0..lg.verts.len() {
        if !lg.verts[pos].is_master() {
            continue;
        }
        let vid = lg.verts[pos].vid;
        let out_local_now = lg.verts[pos].out_local.clone();
        let own_promo = promotions.iter().find(|p| p.vid == vid).copied();
        let meta = lg.verts[pos].meta.as_mut().expect("master meta");
        let mut dirty = false;
        meta.out_remote.retain_mut(|r| {
            if dead.contains(&r.node) {
                let p = promo_by_old
                    .get(&(r.node, r.pos))
                    .unwrap_or_else(|| panic!("consumer {} lost with no promotion", r.target));
                debug_assert_eq!(p.vid, r.target);
                dirty = true;
                if p.new_master == me {
                    return false; // becomes a local link, wired in R4
                }
                r.node = p.new_master;
                r.pos = p.new_pos;
            }
            true
        });
        if let Some(p) = own_promo {
            dirty = true;
            let old_out_local = std::mem::take(&mut meta.out_local_owner);
            meta.out_local_owner = out_local_now;
            for old in old_out_local {
                let c = promo_by_old
                    .get(&(p.old_node, old))
                    .expect("co-located consumer promoted");
                if c.new_master != me {
                    meta.out_remote.push(RemoteEdge {
                        target: c.vid,
                        node: c.new_master,
                        pos: c.new_pos,
                    });
                }
                // Consumers promoted onto this node become local links in R4.
            }
        }
        if dirty {
            dirty_masters.insert(pos as u32);
        }
    }
    // Replica requests for missing sources.
    let mut requests: HashMap<NodeId, Vec<Vid>> = HashMap::new();
    let mut requested: HashSet<Vid> = HashSet::new();
    for (_, srcs) in &pending_wire {
        for &(src, _) in srcs {
            if lg.position(src).is_none() && requested.insert(src) {
                let owner = st
                    .overlay
                    .get(&src)
                    .copied()
                    .unwrap_or_else(|| NodeId::new(shared.owners[src.index()]));
                debug_assert!(st.alive[owner.index()], "source {src} has no live master");
                requests.entry(owner).or_default().push(src);
            }
        }
    }
    for &n in &others {
        let req = requests.remove(&n).unwrap_or_default();
        let bytes = (req.len() * 4) as u64;
        comm.record(1, bytes);
        ctx.send_kind(n, EcMsg::ReplicaRequest(req), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R3: grant requested replicas.
    let mut grants: HashMap<NodeId, Vec<ReplicaGrant<P::Value>>> = HashMap::new();
    for env in round_msgs(ctx, st) {
        match env.msg {
            EcMsg::ReplicaRequest(req) => {
                for vid in req {
                    let pos = lg
                        .position(vid)
                        .unwrap_or_else(|| panic!("request for {vid} but no copy on {me}"));
                    let v = &lg.verts[pos as usize];
                    debug_assert!(v.is_master(), "replica request routed to non-master");
                    grants.entry(env.from).or_default().push(ReplicaGrant {
                        vid,
                        value: v.value.clone(),
                        last_activate: v.last_activate,
                        master_node: me,
                    });
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    for &n in &others {
        let g = grants.remove(&n).unwrap_or_default();
        let bytes: u64 = g
            .iter()
            .map(|x| 16 + shared.prog.value_wire_bytes(&x.value) as u64)
            .sum();
        comm.record(1, bytes);
        ctx.send_kind(n, EcMsg::ReplicaGrant(g), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R4: place granted replicas, wire promoted masters' edges, replay
    //      activation for promoted masters, report placements.
    let mut placements: HashMap<NodeId, Vec<(Vid, u32)>> = HashMap::new();
    for env in round_msgs(ctx, st) {
        match env.msg {
            EcMsg::ReplicaGrant(gs) => {
                for g in gs {
                    debug_assert!(
                        lg.position(g.vid).is_none(),
                        "duplicate grant for {}",
                        g.vid
                    );
                    let pos = lg.verts.len() as u32;
                    lg.index.insert(g.vid, pos);
                    lg.verts.push(EcVertex {
                        vid: g.vid,
                        kind: CopyKind::Replica,
                        master_node: g.master_node,
                        value: g.value,
                        active: false,
                        next_active: false,
                        last_activate: g.last_activate,
                        in_edges: Vec::new(),
                        out_local: Vec::new(),
                        meta: None,
                    });
                    placements
                        .entry(g.master_node)
                        .or_default()
                        .push((g.vid, pos));
                    recovered += 1;
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    for (pos, srcs) in &pending_wire {
        let mut in_edges = Vec::with_capacity(srcs.len());
        for &(src, w) in srcs {
            let spos = lg
                .position(src)
                .expect("all sources local after grant placement");
            in_edges.push((spos, w));
            lg.verts[spos as usize].out_local.push(*pos);
            recovered_edges += 1;
            // Keep local masters' full state in sync with their out_local.
            let sv = &mut lg.verts[spos as usize];
            if sv.is_master() {
                let out_local = sv.out_local.clone();
                sv.meta.as_mut().expect("master meta").out_local_owner = out_local;
                dirty_masters.insert(spos);
            }
        }
        // Activation replay (§5.2.3): a promoted master is active iff one of
        // its in-neighbours' last committed scatter bits says so — or, when
        // resuming at iteration 0 (no committed scatter bits yet), iff the
        // program marks it initially active.
        let active = in_edges
            .iter()
            .any(|&(s, _)| lg.verts[s as usize].last_activate)
            || (resume_iter == 0 && shared.prog.initially_active(lg.verts[*pos as usize].vid));
        let v = &mut lg.verts[*pos as usize];
        v.in_edges = in_edges.clone();
        v.active = active;
        v.next_active = false;
        let meta = v.meta.as_mut().expect("promoted master meta");
        meta.in_edges_owner = in_edges;
    }
    for &n in &others {
        let p = placements.remove(&n).unwrap_or_default();
        let bytes = (p.len() * 8) as u64;
        comm.record(1, bytes);
        ctx.send_kind(n, EcMsg::ReplicaPlaced(p), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R5: record placements; restore the fault-tolerance level by
    //      designating replacement mirrors (§5.2.1), creating fresh FT
    //      replicas where no replica is available.
    for env in round_msgs(ctx, st) {
        match env.msg {
            EcMsg::ReplicaPlaced(ps) => {
                for (vid, pos) in ps {
                    let mpos = lg.position(vid).expect("placement for unknown master");
                    let v = &mut lg.verts[mpos as usize];
                    debug_assert!(v.is_master());
                    v.meta
                        .as_mut()
                        .expect("master meta")
                        .register_replica(env.from, pos);
                    dirty_masters.insert(mpos);
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    // The FT level cannot exceed the surviving cluster's capacity: each
    // mirror needs a distinct node other than the master's.
    let restorable = tolerance.min(survivors.len().saturating_sub(1));
    let mut mirror_updates: HashMap<NodeId, Vec<MirrorUpdate<P::Value, MasterMeta>>> =
        HashMap::new();
    for pos in 0..lg.verts.len() {
        if !lg.verts[pos].is_master() {
            continue;
        }
        loop {
            let v = &lg.verts[pos];
            let meta = v.meta.as_ref().expect("master meta");
            if meta.mirror_nodes.len() >= restorable {
                break;
            }
            // Prefer upgrading an existing replica; otherwise create a new
            // FT replica on the least-assigned survivor.
            let candidate = meta
                .replica_nodes
                .iter()
                .copied()
                .filter(|n| !meta.mirror_nodes.contains(n))
                .min_by_key(|n| (st.mirror_assign[n.index()], n.index()));
            let (target, fresh) = match candidate {
                Some(n) => (n, false),
                None => {
                    let n = survivors
                        .iter()
                        .copied()
                        .filter(|&n| n != me && !meta.replica_nodes.contains(&n))
                        .min_by_key(|n| (st.mirror_assign[n.index()], n.index()))
                        .expect("enough survivors to restore the FT level");
                    (n, true)
                }
            };
            st.mirror_assign[target.index()] += 1;
            let v = &mut lg.verts[pos];
            let meta = v.meta.as_mut().unwrap();
            meta.mirror_nodes.push(target);
            if fresh {
                // Position is reported back in R6.
                mirror_updates
                    .entry(target)
                    .or_default()
                    .push(MirrorUpdate {
                        vid: v.vid,
                        meta: Box::new(MasterMeta::clone(v.meta.as_ref().unwrap())),
                        value: Some(v.value.clone()),
                        last_activate: v.last_activate,
                        master_node: me,
                    });
            } else {
                mirror_updates
                    .entry(target)
                    .or_default()
                    .push(MirrorUpdate {
                        vid: v.vid,
                        meta: Box::new(MasterMeta::clone(v.meta.as_ref().unwrap())),
                        value: None,
                        last_activate: v.last_activate,
                        master_node: me,
                    });
            }
            dirty_masters.insert(pos as u32);
        }
    }
    for &n in &others {
        let ups = mirror_updates.remove(&n).unwrap_or_default();
        let bytes: u64 = ups
            .iter()
            .map(|u| 64 + u.meta.in_edges_owner.len() as u64 * 8)
            .sum();
        comm.record(1, bytes);
        ctx.send_kind(n, EcMsg::MirrorUpdate(ups), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R6: adopt mirror designations; report fresh FT-replica positions.
    let mut fresh_placements: HashMap<NodeId, Vec<(Vid, u32)>> = HashMap::new();
    for env in round_msgs(ctx, st) {
        match env.msg {
            EcMsg::MirrorUpdate(ups) => {
                for u in ups {
                    match lg.position(u.vid) {
                        Some(pos) => {
                            let v = &mut lg.verts[pos as usize];
                            v.kind = CopyKind::Mirror;
                            v.meta = Some(u.meta);
                            v.master_node = u.master_node;
                        }
                        None => {
                            let value = u.value.expect("fresh FT replica carries its value");
                            let pos = lg.verts.len() as u32;
                            lg.index.insert(u.vid, pos);
                            lg.verts.push(EcVertex {
                                vid: u.vid,
                                kind: CopyKind::Mirror,
                                master_node: u.master_node,
                                value,
                                active: false,
                                next_active: false,
                                last_activate: u.last_activate,
                                in_edges: Vec::new(),
                                out_local: Vec::new(),
                                meta: Some(u.meta),
                            });
                            fresh_placements
                                .entry(u.master_node)
                                .or_default()
                                .push((u.vid, pos));
                        }
                    }
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    for &n in &others {
        let p = fresh_placements.remove(&n).unwrap_or_default();
        let bytes = (p.len() * 8) as u64;
        comm.record(1, bytes);
        ctx.send_kind(n, EcMsg::ReplicaPlaced(p), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R7: register fresh placements; push the final full state to every
    //      mirror of each dirty master.
    for env in round_msgs(ctx, st) {
        match env.msg {
            EcMsg::ReplicaPlaced(ps) => {
                for (vid, pos) in ps {
                    let mpos = lg.position(vid).expect("placement for unknown master");
                    lg.verts[mpos as usize]
                        .meta
                        .as_mut()
                        .expect("master meta")
                        .register_replica(env.from, pos);
                    dirty_masters.insert(mpos);
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    let mut refreshes: HashMap<NodeId, Vec<MirrorUpdate<P::Value, MasterMeta>>> = HashMap::new();
    for &pos in &dirty_masters {
        let v = &lg.verts[pos as usize];
        if !v.is_master() {
            continue;
        }
        let meta = v.meta.as_ref().expect("master meta");
        for &m in &meta.mirror_nodes {
            refreshes.entry(m).or_default().push(MirrorUpdate {
                vid: v.vid,
                meta: Box::new(MasterMeta::clone(meta)),
                value: None,
                last_activate: v.last_activate,
                master_node: me,
            });
        }
    }
    for &n in &others {
        let ups = refreshes.remove(&n).unwrap_or_default();
        let bytes: u64 = ups
            .iter()
            .map(|u| 64 + u.meta.in_edges_owner.len() as u64 * 8)
            .sum();
        comm.record(1, bytes);
        ctx.send_kind(n, EcMsg::MirrorUpdate(ups), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R8: adopt refreshed metas; leader acknowledges the recovery.
    for env in round_msgs(ctx, st) {
        match env.msg {
            EcMsg::MirrorUpdate(ups) => {
                for u in ups {
                    let pos = lg.position(u.vid).expect("meta refresh for unknown copy");
                    let v = &mut lg.verts[pos as usize];
                    debug_assert!(!v.is_master(), "meta refresh addressed to the master");
                    v.kind = CopyKind::Mirror;
                    v.master_node = u.master_node;
                    v.meta = Some(u.meta);
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    if me == st.leader() {
        for &d in dead {
            ctx.cluster().coordinator().ack_recovered(d);
        }
    }
    ctx.enter_barrier();

    st.recoveries.push(RecoveryReport {
        strategy: "migration",
        failed_nodes: dead.len(),
        reload: sw_total.elapsed(),
        reconstruct: Duration::ZERO,
        replay: Duration::ZERO,
        vertices_recovered: recovered,
        edges_recovered: recovered_edges,
        comm,
    });
}

// --------------------------------------------------------------------------
// Checkpoint recovery (§2.2-2.3)
// --------------------------------------------------------------------------

fn ckpt_recover_survivor<P>(
    ctx: &Ctx<P::Value>,
    lg: &mut EcLocalGraph<P::Value>,
    shared: &Arc<Shared<P>>,
    st: &mut St<P::Value>,
    dead: &[NodeId],
    resume_iter: u64,
) where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let me = ctx.id();
    st.mark_dead(dead);
    if me == st.leader() {
        for &d in dead {
            assert!(
                ctx.cluster().dispatch_standby(d),
                "checkpoint recovery of {d} requires a standby"
            );
        }
    }
    ctx.enter_barrier();

    // Reload: every node (survivors too) rolls back to the last snapshot —
    // for incremental mode, to the initial state plus the snapshot chain.
    let sw = Stopwatch::start();
    let incremental = matches!(
        shared.cfg.ft,
        FtMode::Checkpoint {
            incremental: true,
            ..
        }
    );
    let snap_iter = if st.last_snapshot_iter == 0 {
        reset_to_initial(lg, shared);
        // Masters no longer hold their last-shipped values: the filter's
        // entries describe nothing anymore.
        st.sync_filter.clear();
        0
    } else if incremental {
        reset_to_initial(lg, shared);
        st.sync_filter.clear();
        apply_snapshot_chain(lg, shared, me, true)
    } else {
        // A full snapshot restores masters only; surviving replicas keep
        // exactly the state our last syncs installed, so the filter stays
        // valid toward survivors. The crashed nodes' replacements are
        // rebuilt from snapshots instead — re-ship everything there.
        for &d in dead {
            st.sync_filter.invalidate_dest(d);
        }
        let bytes = shared
            .dfs
            .read(&format!("ec/ckpt/{}/{}", st.last_snapshot_iter, me.raw()))
            .expect("own snapshot present");
        ckpt::apply_ec_snapshot(lg, &bytes).expect("snapshot decodes")
    };
    st.dirty.clear();
    let reload = sw.elapsed();
    ctx.enter_barrier();

    // Reconstruct: replica values are not in snapshots; masters rebroadcast.
    let mut sw = Stopwatch::start();
    ckpt_full_sync(ctx, lg, shared, st);
    let reconstruct = sw.lap();

    st.iter = snap_iter;
    st.replay_until = resume_iter;
    st.recoveries.push(RecoveryReport {
        strategy: "checkpoint",
        failed_nodes: dead.len(),
        reload,
        reconstruct,
        replay: Duration::ZERO, // accumulated as lost iterations re-run
        vertices_recovered: lg.num_masters() as u64,
        edges_recovered: 0,
        comm: CommStats::default(),
    });
    for d in dead {
        st.alive[d.index()] = true;
    }
}

fn ckpt_newbie<P>(
    ctx: &Ctx<P::Value>,
    shared: &Arc<Shared<P>>,
    st: &mut St<P::Value>,
) -> EcLocalGraph<P::Value>
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let me = ctx.id();
    ctx.enter_barrier();
    let sw = Stopwatch::start();
    // Reload the immutable topology from the metadata snapshot, then the
    // last data snapshot (if any checkpoint completed).
    let meta_bytes = shared
        .dfs
        .read(&format!("ec/meta/{}", me.raw()))
        .expect("metadata snapshot written at load");
    let mut lg: EcLocalGraph<P::Value> =
        ckpt::decode_ec_graph(&meta_bytes).expect("metadata snapshot decodes");
    let incremental = matches!(
        shared.cfg.ft,
        FtMode::Checkpoint {
            incremental: true,
            ..
        }
    );
    let snap_iter = apply_snapshot_chain(&mut lg, shared, me, incremental);
    let reload = sw.elapsed();
    ctx.enter_barrier();

    let sw = Stopwatch::start();
    ckpt_full_sync(ctx, &mut lg, shared, st);
    let reconstruct = sw.elapsed();

    st.iter = snap_iter;
    st.last_snapshot_iter = snap_iter;
    st.recoveries.push(RecoveryReport {
        strategy: "checkpoint",
        failed_nodes: 1,
        reload,
        reconstruct,
        replay: Duration::ZERO,
        vertices_recovered: lg.verts.len() as u64,
        edges_recovered: lg.verts.iter().map(|v| v.in_edges.len() as u64).sum(),
        comm: CommStats::default(),
    });
    lg
}

/// Post-reload replica refresh: every master pushes its restored state to
/// all of its replicas (one full sync round with its own barrier).
///
/// Records already installed on a destination by our last regular syncs are
/// suppressed (surviving replicas were not rolled back — snapshots hold
/// masters only), which is where redundant-sync suppression pays off most:
/// only vertices that changed since the snapshot are re-shipped to
/// survivors. Recovery cannot be interrupted (failures inject at loop tops
/// only), so staged entries commit immediately, and afterwards every
/// destination provably holds every entry — the filter revalidates fully.
fn ckpt_full_sync<P>(
    ctx: &Ctx<P::Value>,
    lg: &mut EcLocalGraph<P::Value>,
    shared: &Arc<Shared<P>>,
    st: &mut St<P::Value>,
) where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let mut batches: HashMap<NodeId, Vec<VertexSync<P::Value>>> = HashMap::new();
    let mut suppressed = 0u64;
    for (pos, v) in lg.verts.iter().enumerate().filter(|(_, v)| v.is_master()) {
        let meta = v.meta.as_ref().expect("master meta");
        let staged = st.sync_filter.stage(pos as u32, &v.value, v.last_activate);
        for (&node, &rpos) in meta.replica_nodes.iter().zip(&meta.replica_positions) {
            if st.sync_filter.suppress(staged, node) {
                suppressed += 1;
                continue;
            }
            batches.entry(node).or_default().push(VertexSync {
                pos: rpos,
                value: v.value.clone(),
                activate: v.last_activate,
            });
        }
    }
    st.sync_filter.commit();
    st.note_suppressed(suppressed);
    for (node, batch) in batches {
        let bytes: u64 = batch
            .iter()
            .map(|s| {
                VertexSync::<P::Value>::wire_bytes(shared.prog.value_wire_bytes(&s.value)) as u64
            })
            .sum();
        ctx.send_kind(node, EcMsg::Sync(batch), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();
    let incoming = collect_syncs(ctx, st);
    for (pos, value, activate) in incoming {
        let v = &mut lg.verts[pos as usize];
        v.value = value;
        v.last_activate = activate;
        v.next_active = false;
    }
    ctx.enter_barrier();
    st.sync_filter.revalidate_all();
}

/// Applies this node's snapshots in ascending iteration order, returning
/// the last applied iteration (0 when none exist). Incremental snapshots
/// form a chain that must be applied in full; for full snapshots only the
/// newest is applied.
fn apply_snapshot_chain<P>(
    lg: &mut EcLocalGraph<P::Value>,
    shared: &Arc<Shared<P>>,
    me: NodeId,
    incremental: bool,
) -> u64
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let mut iters: Vec<u64> = shared
        .dfs
        .list("ec/ckpt/")
        .iter()
        .filter_map(|p| {
            let mut parts = p.split('/').skip(2);
            let iter: u64 = parts.next()?.parse().ok()?;
            let node: u32 = parts.next()?.parse().ok()?;
            (node == me.raw()).then_some(iter)
        })
        .collect();
    iters.sort_unstable();
    if !incremental {
        iters = iters.split_off(iters.len().saturating_sub(1));
    }
    let mut snap_iter = 0;
    for iter in iters {
        let bytes = shared
            .dfs
            .read(&format!("ec/ckpt/{}/{}", iter, me.raw()))
            .expect("listed snapshot readable");
        snap_iter = if incremental {
            ckpt::apply_ec_snapshot_inc(lg, &bytes).expect("snapshot decodes")
        } else {
            ckpt::apply_ec_snapshot(lg, &bytes).expect("snapshot decodes")
        };
    }
    snap_iter
}

/// Resets a local graph to its initial (iteration-0) state — used when a
/// failure precedes the first checkpoint.
fn reset_to_initial<P>(lg: &mut EcLocalGraph<P::Value>, shared: &Arc<Shared<P>>)
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    for v in lg.verts.iter_mut() {
        v.value = shared.prog.init(v.vid, &shared.degrees);
        v.active = v.is_master() && shared.prog.initially_active(v.vid);
        v.next_active = false;
        v.last_activate = false;
    }
    lg.rebuild_active_frontier();
}

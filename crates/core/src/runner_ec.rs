//! The edge-cut (Cyclops) model plugged into the shared superstep driver.
//! Everything protocol-shaped — the BSP loop, failure dispatch, Rebirth /
//! Migration / checkpoint recovery — lives in `driver.rs` and `recovery.rs`.
//! This module keeps only what is genuinely edge-cut: the fused
//! gather-apply superstep over the sparse activation frontier, the
//! edge-carrying recovery entries (edges travel with vertices — there are
//! no edge-ckpt files), in-edge rewiring for promoted masters, activation
//! replay from synchronised scatter bits, and selfish-master recompute.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use imitator_cluster::{BarrierOutcome, FailurePlan, NodeId};
use imitator_engine::{
    chunk_ranges, ec_commit, ec_compute_chunks, CopyKind, Degrees, EcLocalGraph, EcVertex, FtPlan,
    MasterMeta, VertexProgram, WorkerPool,
};
use imitator_graph::{Graph, Vid};
use imitator_metrics::{MemSize, Stopwatch};
use imitator_partition::EdgeCut;
use imitator_storage::codec::{Decode, Encode};
use imitator_storage::Dfs;

use crate::ckpt;
use crate::driver::{self, ComputeModel, Ctx, ModelGraph, Shared, St, StepOutcome, SyncBufs};
use crate::msg::Promotion;
use crate::msg::{EcRecoverEntry, MirrorUpdate, ReplicaGrant, VertexSync};
use crate::plan::compute_ft_plan;
use crate::recovery::{Adoption, Mig, MigEnv};
use crate::report::RunReport;
use crate::{FtMode, RunConfig};

/// Runs a vertex program over `g` on a simulated cluster partitioned by
/// `cut`, under the configured fault-tolerance mode, with the scheduled
/// failures injected.
///
/// Returns the merged [`RunReport`]; `values` holds every vertex's final
/// master value.
///
/// # Panics
///
/// Panics if `cfg.num_nodes != cut.num_parts()` or if a failure is injected
/// with `FtMode::None`. Standby exhaustion does not panic: Rebirth degrades
/// to Migration onto the survivors, and checkpoint recovery grafts the dead
/// partitions' snapshots onto the survivors (§5.3).
pub fn run_edge_cut<P>(
    g: &Graph,
    cut: &EdgeCut,
    prog: Arc<P>,
    cfg: RunConfig,
    failures: Vec<FailurePlan>,
    dfs: Dfs,
) -> RunReport<P::Value>
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    assert_eq!(
        cfg.num_nodes,
        cut.num_parts(),
        "config node count must match the partitioning"
    );
    let degrees = Arc::new(Degrees::of(g));
    let plan = Arc::new(match cfg.ft {
        FtMode::Replication {
            tolerance,
            selfish_opt,
            ..
        } => compute_ft_plan(
            g,
            cut,
            tolerance,
            selfish_opt,
            prog.selfish_compatible(),
            0xF7,
        ),
        _ => FtPlan::none(g.num_vertices()),
    });
    let lgs = imitator_engine::build_edge_cut_graphs(g, cut, &plan, prog.as_ref(), &degrees);
    let owners: Arc<Vec<u32>> = Arc::new(g.vertices().map(|v| cut.owner(v) as u32).collect());
    driver::run(
        EcModel { prog },
        g.num_vertices(),
        lgs,
        degrees,
        plan,
        owners,
        cfg,
        failures,
        dfs,
    )
}

/// The edge-cut compute model: fused gather-apply at masters over the
/// sparse frontier, one sync round per superstep.
pub(crate) struct EcModel<P: VertexProgram> {
    pub(crate) prog: Arc<P>,
}

/// Migration state the generic rounds don't know about: promoted masters'
/// in-edge sources, captured at promotion and wired after grant placement.
#[derive(Default)]
pub(crate) struct EcMigExtra {
    pending_wire: Vec<(u32, Vec<(Vid, f32)>)>,
}

impl<V> ModelGraph for EcLocalGraph<V> {
    type Value = V;
    type Meta = MasterMeta;

    fn len(&self) -> usize {
        self.verts.len()
    }
    fn position(&self, vid: Vid) -> Option<u32> {
        EcLocalGraph::position(self, vid)
    }
    fn num_masters(&self) -> usize {
        EcLocalGraph::num_masters(self)
    }
    fn vid(&self, pos: u32) -> Vid {
        self.verts[pos as usize].vid
    }
    fn kind(&self, pos: u32) -> CopyKind {
        self.verts[pos as usize].kind
    }
    fn set_kind(&mut self, pos: u32, kind: CopyKind) {
        self.verts[pos as usize].kind = kind;
    }
    fn master_node(&self, pos: u32) -> NodeId {
        self.verts[pos as usize].master_node
    }
    fn set_master_node(&mut self, pos: u32, node: NodeId) {
        self.verts[pos as usize].master_node = node;
    }
    fn value(&self, pos: u32) -> &V {
        &self.verts[pos as usize].value
    }
    fn meta(&self, pos: u32) -> Option<&MasterMeta> {
        self.verts[pos as usize].meta.as_deref()
    }
    fn meta_mut(&mut self, pos: u32) -> Option<&mut MasterMeta> {
        self.verts[pos as usize].meta.as_deref_mut()
    }
    fn set_meta(&mut self, pos: u32, meta: Box<MasterMeta>) {
        self.verts[pos as usize].meta = Some(meta);
    }
}

impl<P> ComputeModel for EcModel<P>
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    type Value = P::Value;
    type Accum = ();
    type Entry = EcRecoverEntry<P::Value>;
    type Meta = MasterMeta;
    type Graph = EcLocalGraph<P::Value>;
    type Scratch = SyncBufs<P::Value>;
    type MigExtra = EcMigExtra;

    const PREFIX: &'static str = "ec";

    fn value_wire_bytes(&self, v: &Self::Value) -> usize {
        self.prog.value_wire_bytes(v)
    }

    fn init_scratch(&self, _lg: &Self::Graph, shared: &Shared<Self>) -> Self::Scratch {
        SyncBufs::new(shared.cfg.num_nodes)
    }

    /// Compute (Algorithm 1 line 5) fused over the sparse frontier,
    /// communicate (line 6), sync barrier (line 7), commit (line 14).
    ///
    /// Compute chunks run on the persistent pool; with pipelining each
    /// chunk's sync batch is staged and shipped as soon as the chunk (and
    /// all earlier chunks) completed, the sync barrier fencing only the
    /// tail. Chunks are consumed in submission order, so staging order —
    /// and with it suppression, delta spans and byte accounting — equals
    /// the serial order exactly.
    fn superstep(
        &self,
        ctx: &Ctx<Self>,
        lg: &mut Arc<Self::Graph>,
        shared: &Shared<Self>,
        st: &mut St<Self>,
        scratch: &mut Self::Scratch,
        pool: &WorkerPool,
    ) -> StepOutcome {
        let mut sw = Stopwatch::start();
        let mut chunks = ec_compute_chunks(pool, lg, &self.prog, &shared.degrees, st.iter);
        let updates = driver::pump_update_syncs::<Self>(
            ctx,
            &**lg,
            shared,
            st,
            scratch,
            &mut chunks,
            &mut sw,
            "compute",
            true,
        );

        let (outcome, _) = ctx.enter_barrier_sum(0);
        st.phases.record("barrier", sw.lap());
        if let BarrierOutcome::Failed(dead) = outcome {
            // Roll back (line 9): the staged updates were never applied
            // anywhere, so the suppression filter forgets them too.
            drop(updates);
            st.sync_filter.rollback();
            return StepOutcome::Failed(dead);
        }
        // The sync barrier passed: this iteration's syncs are the replicas'
        // new last-shipped state.
        st.sync_filter.commit();

        driver::note_dirty::<Self>(st, &shared.cfg, &updates);
        let incoming: Vec<(u32, P::Value, bool)> = driver::collect_syncs::<Self>(ctx, st)
            .into_iter()
            .map(|s| (s.pos, s.value, s.activate))
            .collect();
        let stats = ec_commit(driver::graph_mut(lg), self.prog.as_ref(), updates, incoming);
        st.phases.record("commit", sw.lap());
        StepOutcome::Committed(stats.active_next as u64)
    }

    fn encode_graph(&self, lg: &Self::Graph) -> Vec<u8> {
        ckpt::encode_ec_graph(lg)
    }
    fn decode_graph(&self, bytes: &[u8]) -> Self::Graph {
        ckpt::decode_ec_graph(bytes).expect("metadata snapshot decodes")
    }
    fn encode_snapshot(&self, lg: &Self::Graph, iter: u64) -> Vec<u8> {
        ckpt::encode_ec_snapshot(lg, iter)
    }
    fn encode_snapshot_inc(&self, lg: &Self::Graph, iter: u64, dirty: &[u32]) -> Vec<u8> {
        ckpt::encode_ec_snapshot_inc(lg, iter, dirty)
    }
    fn apply_snapshot(&self, lg: &mut Self::Graph, bytes: &[u8]) -> u64 {
        ckpt::apply_ec_snapshot(lg, bytes).expect("snapshot decodes")
    }
    fn apply_snapshot_inc(&self, lg: &mut Self::Graph, bytes: &[u8]) -> u64 {
        ckpt::apply_ec_snapshot_inc(lg, bytes).expect("snapshot decodes")
    }

    /// Resets to the iteration-0 state — used when a failure precedes the
    /// first checkpoint.
    fn reset_to_initial(&self, lg: &mut Self::Graph, shared: &Shared<Self>) {
        for v in lg.verts.iter_mut() {
            v.value = self.prog.init(v.vid, &shared.degrees);
            v.active = v.is_master() && self.prog.initially_active(v.vid);
            v.next_active = false;
            v.last_activate = false;
        }
        lg.rebuild_active_frontier();
    }

    fn apply_full_sync(&self, lg: &mut Self::Graph, incoming: Vec<VertexSync<Self::Value>>) {
        for s in incoming {
            let v = &mut lg.verts[s.pos as usize];
            v.value = s.value;
            v.last_activate = s.activate;
            v.next_active = false;
        }
    }

    fn scatter_bit(&self, lg: &Self::Graph, pos: u32) -> bool {
        lg.verts[pos as usize].last_activate
    }

    fn empty_graph(&self, me: NodeId) -> Self::Graph {
        EcLocalGraph::empty(me)
    }

    fn replica_entry(
        &self,
        lg: &Self::Graph,
        pos: u32,
        dead_node: NodeId,
        rpos: u32,
        kind: CopyKind,
    ) -> Self::Entry {
        let v = &lg.verts[pos as usize];
        let meta = v
            .meta
            .as_ref()
            .unwrap_or_else(|| panic!("full-state copy of {} has no meta", v.vid));
        EcRecoverEntry {
            vid: v.vid,
            pos: rpos,
            kind,
            master_node: v.master_node,
            value: v.value.clone(),
            last_activate: v.last_activate,
            active: false,
            in_edges: Vec::new(),
            out_local: meta.replica_out_local_on(dead_node),
            meta: (kind == CopyKind::Mirror).then(|| meta.clone()),
        }
    }

    fn master_entry(&self, lg: &Self::Graph, pos: u32) -> Self::Entry {
        let v = &lg.verts[pos as usize];
        let meta = v
            .meta
            .as_ref()
            .unwrap_or_else(|| panic!("mirror {} has no full state", v.vid));
        EcRecoverEntry {
            vid: v.vid,
            pos: meta.master_pos,
            kind: CopyKind::Master,
            master_node: v.master_node,
            value: v.value.clone(),
            last_activate: v.last_activate,
            active: false,
            in_edges: meta.in_edges_owner.clone(),
            out_local: meta.out_local_owner.clone(),
            meta: Some(meta.clone()),
        }
    }

    fn entry_wire_bytes(&self, e: &Self::Entry) -> u64 {
        EcRecoverEntry::<P::Value>::wire_bytes(
            self.prog.value_wire_bytes(&e.value),
            e.in_edges.len(),
            e.out_local.len(),
        ) as u64
    }
    fn entry_edges(&self, e: &Self::Entry) -> u64 {
        e.in_edges.len() as u64
    }

    fn insert_entry(&self, lg: &mut Self::Graph, e: Self::Entry) {
        lg.insert_at(
            e.pos,
            EcVertex {
                vid: e.vid,
                kind: e.kind,
                master_node: e.master_node,
                value: e.value,
                active: e.active,
                next_active: false,
                last_activate: e.last_activate,
                in_edges: e.in_edges,
                out_local: e.out_local,
                meta: e.meta,
            },
        );
    }

    fn validate(&self, lg: &Self::Graph) {
        lg.debug_validate();
    }

    /// Replay (§5.1.3): re-run the activation operations recorded in the
    /// synchronised scatter bits, then recompute selfish masters (§4.4).
    /// Resuming at iteration 0 means no scatter bit exists yet: activation
    /// comes from the program's initial active set instead.
    /// Replay fans its read-only passes out on the newbie's pool: activation
    /// targets and selfish-master identification in one chunked scan, then
    /// the selfish recompute itself — parallel only when no selfish master
    /// feeds another. The serial loop recomputes in ascending position order
    /// with *progressive* writes, so a selfish→selfish in-edge would make a
    /// later vertex read an earlier one's fresh value; absent such edges the
    /// snapshot recompute is bit-identical, and with them we keep the serial
    /// loop (mutations always stay on the protocol thread).
    fn rebirth_replay(
        &self,
        lg: &mut Arc<Self::Graph>,
        shared: &Shared<Self>,
        resume: u64,
        pool: &WorkerPool,
    ) -> bool {
        // Chunked read-only scan: which positions get activated by replayed
        // scatter bits, and which masters are selfish. Reads `last_activate`
        // / `out_local` / kind only, so the snapshot view equals what the
        // serial loop (which mutated only `active`) observed.
        let mut activations: Vec<u32> = Vec::new();
        let mut selfish_positions: Vec<u32> = Vec::new();
        let jobs = chunk_ranges(lg.verts.len(), pool.threads())
            .into_iter()
            .map(|r| {
                let lg = Arc::clone(lg);
                let plan = Arc::clone(&shared.plan);
                Box::new(move || {
                    let mut acts: Vec<u32> = Vec::new();
                    let mut selfish: Vec<u32> = Vec::new();
                    for pos in r {
                        let v = &lg.verts[pos];
                        if v.last_activate {
                            acts.extend_from_slice(&v.out_local);
                        }
                        if v.is_master() && *plan.selfish.get(v.vid.index()).unwrap_or(&false) {
                            selfish.push(pos as u32);
                        }
                    }
                    (acts, selfish)
                }) as Box<dyn FnOnce() -> (Vec<u32>, Vec<u32>) + Send>
            })
            .collect();
        for (acts, selfish) in pool.dispatch(jobs) {
            activations.extend(acts);
            selfish_positions.extend(selfish);
        }
        {
            let g = driver::graph_mut(lg);
            for &t in &activations {
                g.verts[t as usize].active = true;
            }
            if resume == 0 {
                for v in g.verts.iter_mut().filter(|v| v.is_master()) {
                    if self.prog.initially_active(v.vid) {
                        v.active = true;
                    }
                }
            }
        }
        let mut selfish_mask = vec![false; lg.verts.len()];
        for &pos in &selfish_positions {
            selfish_mask[pos as usize] = true;
        }
        let independent = selfish_positions.iter().all(|&pos| {
            lg.verts[pos as usize]
                .in_edges
                .iter()
                .all(|&(src, _)| !selfish_mask[src as usize])
        });
        if independent {
            let selfish: Arc<Vec<u32>> = Arc::new(selfish_positions);
            let jobs = chunk_ranges(selfish.len(), pool.threads())
                .into_iter()
                .map(|r| {
                    let lg = Arc::clone(lg);
                    let prog = Arc::clone(&self.prog);
                    let degrees = Arc::clone(&shared.degrees);
                    let selfish = Arc::clone(&selfish);
                    Box::new(move || {
                        let mut out: Vec<(u32, P::Value)> = Vec::with_capacity(r.len());
                        for i in r {
                            let pos = selfish[i];
                            let v = &lg.verts[pos as usize];
                            let mut acc: Option<P::Accum> = None;
                            for &(src, w) in &v.in_edges {
                                let c = prog.gather(w, &lg.verts[src as usize].value);
                                acc = Some(match acc {
                                    None => c,
                                    Some(a) => prog.combine(a, c),
                                });
                            }
                            out.push((pos, prog.apply(v.vid, &v.value, acc, &degrees)));
                        }
                        out
                    }) as Box<dyn FnOnce() -> Vec<(u32, P::Value)> + Send>
                })
                .collect();
            let mut updates: Vec<(u32, P::Value)> = Vec::new();
            for chunk in pool.dispatch(jobs) {
                updates.extend(chunk);
            }
            let g = driver::graph_mut(lg);
            for (pos, new) in updates {
                g.verts[pos as usize].value = new;
            }
        } else {
            let g = driver::graph_mut(lg);
            for pos in selfish_positions {
                let v = &g.verts[pos as usize];
                let mut acc: Option<P::Accum> = None;
                for &(src, w) in &v.in_edges {
                    let c = self.prog.gather(w, &g.verts[src as usize].value);
                    acc = Some(match acc {
                        None => c,
                        Some(a) => self.prog.combine(a, c),
                    });
                }
                let new = self.prog.apply(v.vid, &v.value, acc, &shared.degrees);
                g.verts[pos as usize].value = new;
            }
        }
        driver::graph_mut(lg).rebuild_active_frontier();
        true
    }

    fn graph_stats(&self, lg: &Self::Graph) -> (u64, u64) {
        (
            lg.verts.len() as u64,
            lg.verts.iter().map(|v| v.in_edges.len() as u64).sum(),
        )
    }

    /// Every recovery path may touch `active` bits directly; restore the
    /// frontier invariant before the next superstep computes from it.
    fn after_recovery(&self, lg: &mut Self::Graph) {
        lg.rebuild_active_frontier();
    }

    /// A promoted master recomputes; its in-edges are rewired in R4 from
    /// the sources captured here (the full-state copy records them by vid).
    fn on_promote(&self, lg: &mut Self::Graph, pos: u32, mig: &mut Mig<EcMigExtra>) {
        let v = &mut lg.verts[pos as usize];
        v.active = false;
        let meta = v
            .meta
            .as_mut()
            .unwrap_or_else(|| panic!("promoted mirror {} has no full state", v.vid));
        let srcs: Vec<(Vid, f32)> = meta
            .in_edge_srcs
            .iter()
            .zip(&meta.in_edges_owner)
            .map(|(&s, &(_, w))| (s, w))
            .collect();
        meta.in_edges_owner.clear();
        mig.extra.pending_wire.push((pos, srcs));
    }

    /// R2: fix position-addressed consumer tables against the promotion
    /// map, then request replicas of promoted masters' missing in-edge
    /// sources.
    fn migration_requests(
        &self,
        lg: &mut Self::Graph,
        shared: &Shared<Self>,
        st: &St<Self>,
        mig: &mut Mig<EcMigExtra>,
        env: &MigEnv<'_>,
    ) -> HashMap<NodeId, Vec<Vid>> {
        let me = env.me;
        // Fix consumer tables. (a) out_remote entries pointing at a crashed
        // node follow the consumer to its promotion target; entries landing
        // on this node become local links (wired in R4). (b) A freshly
        // promoted master's old co-located consumers (positions on the
        // crashed node) become remote links too.
        for pos in 0..lg.verts.len() {
            if !lg.verts[pos].is_master() {
                continue;
            }
            let vid = lg.verts[pos].vid;
            let out_local_now = lg.verts[pos].out_local.clone();
            let own_promo = env.promotions.iter().find(|p| p.vid == vid).copied();
            let meta = lg.verts[pos]
                .meta
                .as_mut()
                .unwrap_or_else(|| panic!("master {vid} has no full state"));
            let mut dirty = false;
            meta.out_remote.retain_mut(|r| {
                if env.dead.contains(&r.node) {
                    let p = env
                        .promo_by_old
                        .get(&(r.node, r.pos))
                        .unwrap_or_else(|| panic!("consumer {} lost with no promotion", r.target));
                    debug_assert_eq!(p.vid, r.target);
                    dirty = true;
                    if p.new_master == me {
                        return false; // becomes a local link, wired in R4
                    }
                    r.node = p.new_master;
                    r.pos = p.new_pos;
                }
                true
            });
            if let Some(p) = own_promo {
                dirty = true;
                let old_out_local = std::mem::take(&mut meta.out_local_owner);
                meta.out_local_owner = out_local_now;
                for old in old_out_local {
                    let c = env
                        .promo_by_old
                        .get(&(p.old_node, old))
                        .expect("co-located consumer promoted");
                    if c.new_master != me {
                        meta.out_remote.push(imitator_engine::RemoteEdge {
                            target: c.vid,
                            node: c.new_master,
                            pos: c.new_pos,
                        });
                    }
                    // Consumers promoted onto this node become local links
                    // in R4.
                }
            }
            if dirty {
                mig.dirty_masters.insert(pos as u32);
            }
        }
        // Replica requests for missing sources.
        let mut requests: HashMap<NodeId, Vec<Vid>> = HashMap::new();
        let mut requested: HashSet<Vid> = HashSet::new();
        for (_, srcs) in &mig.extra.pending_wire {
            for &(src, _) in srcs {
                if lg.position(src).is_none() && requested.insert(src) {
                    let owner = st
                        .overlay
                        .get(&src)
                        .copied()
                        .unwrap_or_else(|| NodeId::new(shared.owners[src.index()]));
                    debug_assert!(st.alive[owner.index()], "source {src} has no live master");
                    requests.entry(owner).or_default().push(src);
                }
            }
        }
        requests
    }

    fn place_granted(&self, lg: &mut Self::Graph, grant: ReplicaGrant<Self::Value>) -> u32 {
        let pos = lg.verts.len() as u32;
        lg.index.insert(grant.vid, pos);
        lg.verts.push(EcVertex {
            vid: grant.vid,
            kind: CopyKind::Replica,
            master_node: grant.master_node,
            value: grant.value,
            active: false,
            next_active: false,
            last_activate: grant.last_activate,
            in_edges: Vec::new(),
            out_local: Vec::new(),
            meta: None,
        });
        pos
    }

    /// R4: wire promoted masters' in-edges from the captured sources (all
    /// local after grant placement) and replay their activation (§5.2.3).
    fn migration_wire(&self, lg: &mut Self::Graph, mig: &mut Mig<EcMigExtra>, resume: u64) {
        for (pos, srcs) in &mig.extra.pending_wire {
            let mut in_edges = Vec::with_capacity(srcs.len());
            for &(src, w) in srcs {
                let spos = lg
                    .position(src)
                    .expect("all sources local after grant placement");
                in_edges.push((spos, w));
                lg.verts[spos as usize].out_local.push(*pos);
                mig.edges_recovered += 1;
                // Keep local masters' full state in sync with their
                // out_local.
                let sv = &mut lg.verts[spos as usize];
                if sv.is_master() {
                    let out_local = sv.out_local.clone();
                    sv.meta
                        .as_mut()
                        .unwrap_or_else(|| panic!("master {} has no full state", sv.vid))
                        .out_local_owner = out_local;
                    mig.dirty_masters.insert(spos);
                }
            }
            // Activation replay (§5.2.3): a promoted master is active iff
            // one of its in-neighbours' last committed scatter bits says so
            // — or, when resuming at iteration 0 (no committed scatter bits
            // yet), iff the program marks it initially active.
            let active = in_edges
                .iter()
                .any(|&(s, _)| lg.verts[s as usize].last_activate)
                || (resume == 0 && self.prog.initially_active(lg.verts[*pos as usize].vid));
            let v = &mut lg.verts[*pos as usize];
            v.in_edges = in_edges.clone();
            v.active = active;
            v.next_active = false;
            let meta = v
                .meta
                .as_mut()
                .unwrap_or_else(|| panic!("promoted master {} has no full state", v.vid));
            meta.in_edges_owner = in_edges;
        }
    }

    fn place_fresh_mirror(
        &self,
        lg: &mut Self::Graph,
        update: MirrorUpdate<Self::Value, Self::Meta>,
    ) -> u32 {
        let value = update.value.expect("fresh FT replica carries its value");
        let pos = lg.verts.len() as u32;
        lg.index.insert(update.vid, pos);
        lg.verts.push(EcVertex {
            vid: update.vid,
            kind: CopyKind::Mirror,
            master_node: update.master_node,
            value,
            active: false,
            next_active: false,
            last_activate: update.last_activate,
            in_edges: Vec::new(),
            out_local: Vec::new(),
            meta: Some(update.meta),
        });
        pos
    }

    fn meta_update_bytes(&self, meta: &Self::Meta) -> u64 {
        // Payload estimate excluding the vertex ID, which ships as a varint
        // in the mirror frame's vid column (see `recovery::mirror_frame_bytes`).
        56 + meta.in_edges_owner.len() as u64 * 8
    }

    /// Checkpoint-fallback graft: splice the whole reconstructed partition
    /// into this survivor's graph. Positions are remapped dead-local →
    /// here-local in one pass (existing local copies keep their slot, the
    /// rest append), so every position-addressed table in the adopted state
    /// — in-edges, local consumer links, owner tables — rewrites through
    /// one map. Remote consumer links pointing at other crashed layouts are
    /// kept as-is; `migration_requests` rewrites them against the
    /// cluster-wide promotion map in the next round.
    fn adopt_partition(
        &self,
        lg: &mut Self::Graph,
        dead_lg: Self::Graph,
        dead: NodeId,
        episode: &[NodeId],
        mig: &mut Mig<EcMigExtra>,
    ) -> Adoption {
        let me = lg.node;
        let base = lg.verts.len() as u32;
        let mut next = base;
        let map: Vec<u32> = dead_lg
            .verts
            .iter()
            .map(|dv| {
                lg.position(dv.vid).unwrap_or_else(|| {
                    let p = next;
                    next += 1;
                    p
                })
            })
            .collect();
        let mut out = Adoption::default();
        for (dp, mut dv) in dead_lg.verts.into_iter().enumerate() {
            let new_pos = map[dp];
            for e in dv.in_edges.iter_mut() {
                e.0 = map[e.0 as usize];
            }
            let mut out_local: Vec<u32> = dv.out_local.iter().map(|&t| map[t as usize]).collect();
            match dv.kind {
                CopyKind::Master => {
                    let mut meta = dv
                        .meta
                        .take()
                        .unwrap_or_else(|| panic!("adopted master {} has no full state", dv.vid));
                    meta.master_pos = new_pos;
                    meta.purge_node(me);
                    for &x in episode {
                        meta.purge_node(x);
                    }
                    for e in meta.in_edges_owner.iter_mut() {
                        e.0 = map[e.0 as usize];
                    }
                    for t in meta.out_local_owner.iter_mut() {
                        *t = map[*t as usize];
                    }
                    // Consumers that were remote-on-the-dead-node but live
                    // *here* become plain local links.
                    meta.out_remote.retain(|r| {
                        if r.node == me {
                            out_local.push(r.pos);
                            return false;
                        }
                        true
                    });
                    mig.edges_recovered += dv.in_edges.len() as u64;
                    if new_pos < base {
                        // Upgrade the pre-existing ghost copy in place,
                        // keeping the consumer links it already knew about.
                        let v = &mut lg.verts[new_pos as usize];
                        debug_assert_eq!(
                            v.kind,
                            CopyKind::Replica,
                            "checkpoint FT keeps no mirrors"
                        );
                        v.kind = CopyKind::Master;
                        v.master_node = me;
                        v.value = dv.value;
                        v.active = dv.active;
                        v.next_active = false;
                        v.last_activate = dv.last_activate;
                        v.in_edges = dv.in_edges;
                        out_local.extend(&v.out_local);
                        out_local.sort_unstable();
                        out_local.dedup();
                        v.out_local = out_local.clone();
                        meta.out_local_owner = out_local;
                        v.meta = Some(meta);
                    } else {
                        out_local.sort_unstable();
                        out_local.dedup();
                        meta.out_local_owner = out_local.clone();
                        lg.insert_at(
                            new_pos,
                            EcVertex {
                                vid: dv.vid,
                                kind: CopyKind::Master,
                                master_node: me,
                                value: dv.value,
                                active: dv.active,
                                next_active: false,
                                last_activate: dv.last_activate,
                                in_edges: dv.in_edges,
                                out_local,
                                meta: Some(meta),
                            },
                        );
                    }
                    out.promotions.push(Promotion {
                        vid: dv.vid,
                        new_master: me,
                        new_pos,
                        old_node: dead,
                        old_pos: dp as u32,
                    });
                    mig.recovered += 1;
                }
                CopyKind::Replica => {
                    if new_pos < base {
                        // Already hosted here: merge the dead layout's local
                        // consumer links into the existing copy.
                        let v = &mut lg.verts[new_pos as usize];
                        v.out_local.extend(out_local);
                        v.out_local.sort_unstable();
                        v.out_local.dedup();
                        if v.is_master() {
                            let merged = v.out_local.clone();
                            v.meta
                                .as_mut()
                                .unwrap_or_else(|| panic!("master {} has no full state", v.vid))
                                .out_local_owner = merged;
                        }
                    } else {
                        let master_node = dv.master_node;
                        lg.insert_at(
                            new_pos,
                            EcVertex {
                                vid: dv.vid,
                                kind: CopyKind::Replica,
                                master_node,
                                value: dv.value,
                                active: false,
                                next_active: false,
                                last_activate: dv.last_activate,
                                in_edges: dv.in_edges,
                                out_local,
                                meta: None,
                            },
                        );
                        if episode.contains(&master_node) {
                            out.orphans.push(new_pos);
                        } else {
                            out.placements.push((master_node, dv.vid, new_pos));
                        }
                        mig.recovered += 1;
                    }
                }
                CopyKind::Mirror => {
                    unreachable!("checkpoint FT keeps no mirrors")
                }
            }
        }
        out
    }
}

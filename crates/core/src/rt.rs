//! Runtime state shared by the edge-cut and vertex-cut node main loops.

use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

use imitator_cluster::{Envelope, NodeId};
use imitator_graph::Vid;
use imitator_metrics::{CommBreakdown, CommStats, PhaseTimes, PoolStats};

use crate::report::{RecoveryReport, RunReport};
use crate::suppress::SyncFilter;

/// Per-node mutable runtime bookkeeping threaded through the main loop.
#[derive(Debug)]
pub(crate) struct NodeState<M> {
    /// Committed-iteration counter (lockstep across nodes).
    pub iter: u64,
    /// This node's view of cluster membership, updated from barrier
    /// outcomes (deterministic, unlike racy coordinator queries).
    pub alive: Vec<bool>,
    /// Master-location overrides learned from Migration promotions.
    pub overlay: HashMap<Vid, NodeId>,
    /// Normal-execution traffic.
    pub comm: CommStats,
    /// The fault-tolerance-only share of `comm`.
    pub ft_comm: CommStats,
    /// Phase breakdown.
    pub phases: PhaseTimes,
    /// `(iteration, offset since start)` commit stamps.
    pub timeline: Vec<(u64, Duration)>,
    /// Time spent writing checkpoints.
    pub ckpt_time: Duration,
    /// Recovery episodes.
    pub recoveries: Vec<RecoveryReport>,
    /// Iterations below this count re-execute lost work; their duration is
    /// charged to the last recovery's replay phase (checkpoint recovery).
    pub replay_until: u64,
    /// Iteration of the last completed checkpoint (0 = none).
    pub last_snapshot_iter: u64,
    /// Masters whose value changed since the last snapshot (incremental
    /// checkpointing only).
    pub dirty: std::collections::HashSet<u32>,
    /// Run-start instant for the timeline.
    pub start: Instant,
    /// Recovery-protocol messages drained while discarding stale traffic.
    pub stash: Vec<Envelope<M>>,
    /// Deterministic local counter for balanced replacement-mirror choice.
    pub mirror_assign: Vec<usize>,
    /// Redundant-sync filter (per-master last-shipped state).
    pub sync_filter: SyncFilter,
    /// Sync records skipped by the filter, total.
    pub suppressed_syncs: u64,
    /// `(iteration, records skipped)` — sparse, nonzero entries only.
    pub suppressed_timeline: Vec<(u64, u64)>,
    /// Worker-pool / pipelining counters: `early_batches` and `overlap`
    /// accumulate per superstep; `jobs` and `peak_busy` are read off the
    /// pool when the node retires.
    pub pool: PoolStats,
}

impl<M> NodeState<M> {
    pub(crate) fn new(num_nodes: usize, start: Instant, sync_suppress: bool) -> Self {
        NodeState {
            iter: 0,
            alive: vec![true; num_nodes],
            overlay: HashMap::new(),
            comm: CommStats::default(),
            ft_comm: CommStats::default(),
            phases: PhaseTimes::new(),
            timeline: Vec::new(),
            ckpt_time: Duration::ZERO,
            recoveries: Vec::new(),
            replay_until: 0,
            last_snapshot_iter: 0,
            dirty: std::collections::HashSet::new(),
            start,
            stash: Vec::new(),
            mirror_assign: vec![0; num_nodes],
            sync_filter: SyncFilter::new(num_nodes, sync_suppress),
            suppressed_syncs: 0,
            suppressed_timeline: Vec::new(),
            pool: PoolStats::default(),
        }
    }

    /// Records `n` suppressed sync records for the current iteration.
    pub(crate) fn note_suppressed(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.suppressed_syncs += n;
        match self.suppressed_timeline.last_mut() {
            Some((iter, count)) if *iter == self.iter => *count += n,
            _ => self.suppressed_timeline.push((self.iter, n)),
        }
    }

    /// Survivors after removing `dead`, ascending.
    pub(crate) fn mark_dead(&mut self, dead: &[NodeId]) -> Vec<NodeId> {
        for d in dead {
            self.alive[d.index()] = false;
        }
        self.alive_nodes()
    }

    /// Currently-alive nodes in this node's view, ascending.
    pub(crate) fn alive_nodes(&self) -> Vec<NodeId> {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// The recovery leader: lowest-ID survivor.
    pub(crate) fn leader(&self) -> NodeId {
        self.alive_nodes()[0]
    }
}

/// What one node hands back to the driver.
#[derive(Debug)]
pub(crate) struct NodeOutcome<G> {
    /// The final local graph (`None` for a crashed node — its memory died
    /// with it).
    pub lg: Option<G>,
    pub iterations: u64,
    pub comm: CommStats,
    pub ft_comm: CommStats,
    pub phases: PhaseTimes,
    pub timeline: Vec<(u64, Duration)>,
    pub ckpt_time: Duration,
    pub recoveries: Vec<RecoveryReport>,
    pub suppressed_syncs: u64,
    pub suppressed_timeline: Vec<(u64, u64)>,
    pub pool: PoolStats,
}

impl<G> NodeOutcome<G> {
    pub(crate) fn from_state<M>(lg: Option<G>, st: NodeState<M>) -> Self {
        NodeOutcome {
            lg,
            iterations: st.iter,
            comm: st.comm,
            ft_comm: st.ft_comm,
            phases: st.phases,
            timeline: st.timeline,
            ckpt_time: st.ckpt_time,
            recoveries: st.recoveries,
            suppressed_syncs: st.suppressed_syncs,
            suppressed_timeline: st.suppressed_timeline,
            pool: st.pool,
        }
    }
}

/// Merges all node outcomes into the run report (values filled by caller).
pub(crate) fn merge_outcomes<G, V>(
    outcomes: Vec<NodeOutcome<G>>,
    elapsed: Duration,
    mem_bytes: Vec<usize>,
    extra_replicas: usize,
    fabric: CommBreakdown,
) -> (RunReport<V>, Vec<G>) {
    let mut graphs = Vec::new();
    let mut suppressed_by_iter: BTreeMap<u64, u64> = BTreeMap::new();
    let mut report = RunReport {
        values: Vec::new(),
        iterations: 0,
        elapsed,
        timeline: Vec::new(),
        comm: CommStats::default(),
        ft_comm: CommStats::default(),
        phases: PhaseTimes::new(),
        ckpt_time: Duration::ZERO,
        recoveries: Vec::new(),
        mem_bytes,
        extra_replicas,
        suppressed_syncs: 0,
        suppressed_timeline: Vec::new(),
        fabric,
        pool: PoolStats::default(),
        pipeline: false,
        delta_sync: false,
        suspicion: imitator_metrics::SuspicionStats::default(),
    };
    for o in outcomes {
        report.pool.merge(&o.pool);
        report.suppressed_syncs += o.suppressed_syncs;
        for (iter, n) in o.suppressed_timeline {
            *suppressed_by_iter.entry(iter).or_default() += n;
        }
        report.iterations = report.iterations.max(o.iterations);
        report.comm += o.comm;
        report.ft_comm += o.ft_comm;
        report.ckpt_time = report.ckpt_time.max(o.ckpt_time);
        if o.timeline.len() > report.timeline.len() {
            report.timeline = o.timeline;
        }
        // Phases: keep the per-phase maximum across nodes (the cluster is as
        // slow as its slowest node).
        for (name, d) in o.phases.iter() {
            let cur = report.phases.get(name).unwrap_or(Duration::ZERO);
            if d > cur {
                report.phases.record(name, d - cur);
            }
        }
        for (i, r) in o.recoveries.iter().enumerate() {
            if i < report.recoveries.len() {
                report.recoveries[i].merge(r);
            } else {
                report.recoveries.push(r.clone());
            }
        }
        if let Some(lg) = o.lg {
            graphs.push(lg);
        }
    }
    report.suppressed_timeline = suppressed_by_iter.into_iter().collect();
    (report, graphs)
}

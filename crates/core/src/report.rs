//! Run and recovery reports.

use std::time::Duration;

use imitator_cluster::NodeId;
use imitator_graph::Vid;
use imitator_metrics::{
    CommBreakdown, CommStats, PhaseTimes, PoolStats, RecoveryCounters, SuspicionStats,
};

/// What one recovery episode cost, broken into the paper's three phases
/// (§5.1/§5.2, Figs. 2(c), 9, 11(b), 15(b)).
///
/// Each node measures its own phases; the driver merges per-phase maxima
/// (recovery finishes when the slowest participant finishes).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Strategy that actually executed: "rebirth", "migration", "checkpoint",
    /// or a degraded form ("rebirth→migration", "checkpoint→migration") when
    /// standby exhaustion forced a fallback onto the survivors.
    pub strategy: &'static str,
    /// Number of crashed nodes handled in this episode.
    pub failed_nodes: usize,
    /// Reloading: moving state — recovery messages from survivors, snapshot
    /// or edge-ckpt reads from the DFS.
    pub reload: Duration,
    /// Reconstruction: rebuilding graph topology and runtime state.
    pub reconstruct: Duration,
    /// Replay: re-running lost work — activation fix-ups for
    /// replication-based recovery, whole lost iterations for checkpointing.
    pub replay: Duration,
    /// Vertex copies recovered (masters + replicas).
    pub vertices_recovered: u64,
    /// Edges recovered.
    pub edges_recovered: u64,
    /// Communication spent on recovery.
    pub comm: CommStats,
    /// Masters this node re-homed during the episode (mirror promotions for
    /// Migration, mirror-recovered masters for Rebirth), sorted by vertex ID.
    pub promoted: Vec<Vid>,
    /// Peers this node exchanged recovery state with, sorted — the newbies
    /// it reloaded (Rebirth) or the survivors it coordinated with
    /// (Migration).
    pub contacted: Vec<NodeId>,
    /// How many attempts the episode took and how many were aborted by
    /// failures arriving mid-recovery (cascading failures, §5.3).
    pub counters: RecoveryCounters,
    /// Fine-grained phase breakdown in protocol order: `reload` /
    /// `reconstruct` / `replay` plus `fence` (barrier waits and abort
    /// fences) and `migration_round1..8`. Merged per-phase maxima across
    /// nodes, like the coarse three-phase fields above.
    pub phases: PhaseTimes,
    /// Failure-detector activity as of the end of this episode: suspicions
    /// raised, retracted (false positives caught in time), confirmed, and
    /// the summed observed detection latency in detector ticks. All-zero
    /// under the oracle detector. Nodes snapshot one shared detector, so
    /// the merge takes element-wise maxima rather than sums.
    pub suspicion: SuspicionStats,
}

impl RecoveryReport {
    /// Total recovery time (sum of the three phases).
    pub fn total(&self) -> Duration {
        self.reload + self.reconstruct + self.replay
    }

    /// Merges another node's view of the same episode (max per phase, sum
    /// of recovered counts and traffic).
    pub fn merge(&mut self, other: &RecoveryReport) {
        // Strategy strings may legitimately differ per node within one
        // episode (a reborn newbie reports "rebirth" even when survivors
        // degraded a later episode); keep self's label — the driver merges
        // node 0's view first, which carries the executed strategy.
        self.reload = self.reload.max(other.reload);
        self.reconstruct = self.reconstruct.max(other.reconstruct);
        self.replay = self.replay.max(other.replay);
        self.vertices_recovered += other.vertices_recovered;
        self.edges_recovered += other.edges_recovered;
        self.comm += other.comm;
        self.promoted.extend(&other.promoted);
        self.promoted.sort_unstable();
        self.promoted.dedup();
        self.contacted.extend(&other.contacted);
        self.contacted.sort_unstable();
        self.contacted.dedup();
        self.counters.merge(&other.counters);
        self.phases.merge_max(&other.phases);
        self.suspicion.merge(&other.suspicion);
    }
}

/// The outcome of one distributed run.
#[derive(Debug, Clone)]
pub struct RunReport<V> {
    /// Final vertex values, indexed by global vertex ID.
    pub values: Vec<V>,
    /// Committed iterations.
    pub iterations: u64,
    /// Wall-clock time of the whole run (load excluded).
    pub elapsed: Duration,
    /// Wall-clock offset (since run start) at which each iteration
    /// committed, as observed by the reporting node — the raw series behind
    /// the Fig. 12 timeline.
    pub timeline: Vec<(u64, Duration)>,
    /// Total messages/bytes on the wire (excluding recovery).
    pub comm: CommStats,
    /// The subset of `comm` that exists only for fault tolerance — syncs to
    /// extra FT replicas (Fig. 8(b), Table 6).
    pub ft_comm: CommStats,
    /// Per-node phase breakdown (compute / send / barrier / commit / ckpt),
    /// merged max across nodes.
    pub phases: PhaseTimes,
    /// Time spent writing checkpoints (included in `elapsed`).
    pub ckpt_time: Duration,
    /// Recovery episodes, in order.
    pub recoveries: Vec<RecoveryReport>,
    /// Per-node resident bytes of graph state right after loading.
    pub mem_bytes: Vec<usize>,
    /// Extra FT replicas created at load (Fig. 3(b)/8(a)); zero unless
    /// replication FT is on.
    pub extra_replicas: usize,
    /// Sync records skipped by redundant-sync suppression across all nodes
    /// (each would have cost its wire bytes; results are bit-identical with
    /// suppression off).
    pub suppressed_syncs: u64,
    /// `(iteration, records skipped)` per superstep, summed across nodes;
    /// sparse — only nonzero supersteps appear.
    pub suppressed_timeline: Vec<(u64, u64)>,
    /// Fabric-level observability: traffic split by message kind
    /// (sync / gather / recovery / control) plus total barrier-wait time, as
    /// recorded by the communication layer itself.
    pub fabric: CommBreakdown,
    /// Worker-pool / pipelining observability: chunk jobs dispatched, peak
    /// worker occupancy, envelopes shipped ahead of the tail fence, and
    /// staging time overlapped with compute (summed / maxed across nodes).
    pub pool: PoolStats,
    /// Whether supersteps were pipelined (config echo; see
    /// [`crate::RunConfig::pipeline`]).
    pub pipeline: bool,
    /// Whether sync records were delta-encoded (config echo; see
    /// [`crate::RunConfig::delta_sync`]).
    pub delta_sync: bool,
    /// Failure-detector activity over the whole run: suspicions raised,
    /// retracted (false positives caught before the fence), confirmed, and
    /// the summed observed detection latency in detector ticks. All-zero
    /// under the oracle detector; nonzero only when the heartbeat detector
    /// actually suspected somebody (a stall-only run shows retractions here
    /// even though no recovery episode ever started).
    pub suspicion: SuspicionStats,
}

impl<V> RunReport<V> {
    /// Mean committed-iteration duration, when at least one committed.
    pub fn avg_iteration(&self) -> Duration {
        if self.iterations == 0 {
            return Duration::ZERO;
        }
        // Difference of consecutive timeline stamps averages to
        // elapsed-per-iteration including barriers and recovery gaps; use
        // last stamp / count for the steady-state figure.
        match self.timeline.last() {
            Some((_, t)) => *t / self.iterations as u32,
            None => Duration::ZERO,
        }
    }

    /// Total recovery time across episodes.
    pub fn recovery_total(&self) -> Duration {
        self.recoveries.iter().map(RecoveryReport::total).sum()
    }

    /// Total memory across nodes.
    pub fn total_mem_bytes(&self) -> usize {
        self.mem_bytes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rr(reload: u64, reconstruct: u64, replay: u64) -> RecoveryReport {
        RecoveryReport {
            strategy: "rebirth",
            failed_nodes: 1,
            reload: Duration::from_millis(reload),
            reconstruct: Duration::from_millis(reconstruct),
            replay: Duration::from_millis(replay),
            vertices_recovered: 10,
            edges_recovered: 20,
            comm: CommStats::new(1, 100),
            promoted: vec![Vid::new(3)],
            contacted: vec![NodeId::new(1)],
            counters: RecoveryCounters {
                attempts: 1,
                aborts: 0,
            },
            phases: PhaseTimes::new(),
            suspicion: SuspicionStats::default(),
        }
    }

    #[test]
    fn total_sums_phases() {
        assert_eq!(rr(1, 2, 3).total(), Duration::from_millis(6));
    }

    #[test]
    fn merge_takes_max_phase_and_sums_counts() {
        let mut a = rr(5, 1, 0);
        a.merge(&rr(2, 9, 4));
        assert_eq!(a.reload, Duration::from_millis(5));
        assert_eq!(a.reconstruct, Duration::from_millis(9));
        assert_eq!(a.replay, Duration::from_millis(4));
        assert_eq!(a.vertices_recovered, 20);
        assert_eq!(a.comm, CommStats::new(2, 200));
    }

    #[test]
    fn merge_takes_per_phase_timer_maxima() {
        let mut a = rr(5, 1, 0);
        a.phases.record("reload", Duration::from_millis(5));
        a.phases
            .record("migration_round1", Duration::from_millis(2));
        let mut b = rr(2, 9, 4);
        b.phases.record("reload", Duration::from_millis(9));
        b.phases
            .record("migration_round1", Duration::from_millis(1));
        b.phases.record("fence", Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.phases.get("reload"), Some(Duration::from_millis(9)));
        assert_eq!(
            a.phases.get("migration_round1"),
            Some(Duration::from_millis(2))
        );
        assert_eq!(a.phases.get("fence"), Some(Duration::from_millis(3)));
    }
}

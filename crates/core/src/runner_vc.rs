//! The vertex-cut (PowerLyra) distributed runner.
//!
//! Structure mirrors the edge-cut runner with the vertex-cut differences of
//! §4.3/§6.10: gather is distributed (partial accumulators flow to masters,
//! adding a third barrier per iteration), vertices are *dense* (every master
//! re-applies each iteration, which is how the paper's vertex-cut evaluation
//! exercises PowerLyra — PageRank only), and edges are not replicated in
//! mirrors: each node persists its owned edges to per-receiver **edge-ckpt
//! files** on the DFS at load, which recovery reloads in parallel.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use imitator_cluster::{
    BarrierOutcome, Cluster, Envelope, FailPoint, FailureInjector, FailurePlan, NodeCtx, NodeId,
};
use imitator_engine::{
    vc_apply_par, vc_commit, vc_partial_gather_par, CopyKind, Degrees, FtPlan, VcEdge,
    VcGatherIndex, VcLocalGraph, VcMeta, VcVertex, VertexProgram,
};
use imitator_graph::{Graph, Vid};
use imitator_metrics::{CommKind, CommStats, MemSize, Stopwatch};
use imitator_partition::VertexCut;
use imitator_storage::codec::{Decode, Encode};
use imitator_storage::Dfs;

use crate::ckpt;
use crate::msg::{
    MirrorUpdate, Promotion, ReplicaGrant, VcMsg, VcRebirthBatch, VcRecoverEntry, VertexSync,
};
use crate::plan::compute_ft_plan;
use crate::report::{RecoveryReport, RunReport};
use crate::rt::{merge_outcomes, NodeOutcome, NodeState};
use crate::{FtMode, RecoveryStrategy, RunConfig};

const RECOVERY_PATIENCE: Duration = Duration::from_secs(30);

struct Shared<P: VertexProgram> {
    prog: Arc<P>,
    degrees: Arc<Degrees>,
    plan: Arc<FtPlan>,
    owners: Arc<Vec<u32>>,
    injector: Arc<FailureInjector>,
    dfs: Dfs,
    cfg: RunConfig,
}

type M<P> = VcMsg<<P as VertexProgram>::Value, <P as VertexProgram>::Accum>;
type Ctx<P> = NodeCtx<M<P>>;
type St<P> = NodeState<M<P>>;

/// Runs a vertex program over `g` on a simulated cluster partitioned by the
/// vertex-cut `cut`, under the configured fault-tolerance mode, with the
/// scheduled failures injected. The engine is dense: every vertex re-applies
/// each iteration until no master's value changes (or `max_iters`).
///
/// # Panics
///
/// Panics if `cfg.num_nodes != cut.num_parts()`, if a failure is injected
/// with `FtMode::None`, or if Rebirth/Checkpoint recovery runs out of
/// standbys.
pub fn run_vertex_cut<P>(
    g: &Graph,
    cut: &VertexCut,
    prog: Arc<P>,
    cfg: RunConfig,
    failures: Vec<FailurePlan>,
    dfs: Dfs,
) -> RunReport<P::Value>
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    assert_eq!(
        cfg.num_nodes,
        cut.num_parts(),
        "config node count must match the partitioning"
    );
    let degrees = Arc::new(Degrees::of(g));
    let plan = Arc::new(match cfg.ft {
        FtMode::Replication {
            tolerance,
            selfish_opt,
            ..
        } => compute_ft_plan(
            g,
            cut,
            tolerance,
            selfish_opt,
            prog.selfish_compatible(),
            0xF7,
        ),
        _ => FtPlan::none(g.num_vertices()),
    });
    let extra_replicas = plan.extra_replica_count();
    let lgs = imitator_engine::build_vertex_cut_graphs(g, cut, &plan, prog.as_ref(), &degrees);
    let mem_bytes: Vec<usize> = lgs.iter().map(MemSize::mem_bytes).collect();
    let owners: Arc<Vec<u32>> = Arc::new(g.vertices().map(|v| cut.master(v) as u32).collect());
    let injector = Arc::new(FailureInjector::new());
    for f in failures {
        injector.schedule(f);
    }
    let shared = Arc::new(Shared {
        prog,
        degrees,
        plan,
        owners,
        injector,
        dfs,
        cfg,
    });
    let cluster: Cluster<M<P>> = Cluster::new(cfg.num_nodes, cfg.standbys, cfg.detection_delay);

    let start = Instant::now();
    let mut handles = Vec::new();
    for (p, lg) in lgs.into_iter().enumerate() {
        let ctx = cluster.take_ctx(NodeId::from_index(p));
        let shared = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            let mut st = NodeState::new(
                shared.cfg.num_nodes,
                Instant::now(),
                shared.cfg.sync_suppress,
            );
            match shared.cfg.ft {
                FtMode::Checkpoint { .. } => {
                    let sw = Stopwatch::start();
                    shared.dfs.write(
                        &format!("vc/meta/{}", ctx.id().raw()),
                        ckpt::encode_vc_graph(&lg),
                    );
                    st.ckpt_time += sw.elapsed();
                }
                FtMode::Replication { .. } => {
                    // §4.3: persist owned edges to per-receiver edge-ckpt
                    // files, overlapped with loading in the paper (charged
                    // to load here, not to iteration time).
                    write_edge_ckpt_files(&lg, &shared);
                }
                FtMode::None => {}
            }
            node_main(ctx, lg, &shared, st)
        }));
    }
    let mut standby_handles = Vec::new();
    for _ in 0..cfg.standbys {
        let cluster = cluster.clone();
        let shared = Arc::clone(&shared);
        standby_handles.push(std::thread::spawn(move || standby_main(&cluster, &shared)));
    }

    let mut outcomes: Vec<NodeOutcome<VcLocalGraph<P::Value>>> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect();
    cluster.shutdown_standbys();
    for h in standby_handles {
        if let Some(o) = h.join().expect("standby thread panicked") {
            outcomes.push(o);
        }
    }
    let elapsed = start.elapsed();

    let (mut report, graphs) = merge_outcomes(
        outcomes,
        elapsed,
        mem_bytes,
        extra_replicas,
        cluster.comm_breakdown(),
    );
    let mut values: Vec<Option<P::Value>> = vec![None; g.num_vertices()];
    for lg in &graphs {
        for v in lg.verts.iter().filter(|v| v.is_master()) {
            values[v.vid.index()] = Some(v.value.clone());
        }
    }
    report.values = values
        .into_iter()
        .enumerate()
        .map(|(i, v)| v.unwrap_or_else(|| panic!("vertex v{i} has no master after run")))
        .collect();
    report
}

/// Splits this node's edges into one edge-ckpt file per receiving node: an
/// edge goes to the file of the node hosting the target's master (or its
/// first mirror when the master is this very node), so each survivor reloads
/// exactly one file in parallel during Migration (§4.3).
fn write_edge_ckpt_files<P>(lg: &VcLocalGraph<P::Value>, shared: &Arc<Shared<P>>)
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let me = lg.node;
    let mut per_receiver: HashMap<NodeId, Vec<(Vid, Vid, f32)>> = HashMap::new();
    for e in &lg.edges {
        let src = lg.verts[e.src as usize].vid;
        let dst_v = &lg.verts[e.dst as usize];
        let receiver = if dst_v.master_node != me {
            dst_v.master_node
        } else {
            let meta = dst_v.meta.as_ref().expect("local master has meta");
            meta.mirror_nodes
                .first()
                .copied()
                .unwrap_or(dst_v.master_node)
        };
        per_receiver
            .entry(receiver)
            .or_default()
            .push((src, dst_v.vid, e.weight));
    }
    for (receiver, edges) in per_receiver {
        shared.dfs.write(
            &format!("vc/eckpt/{}/{}", me.raw(), receiver.raw()),
            ckpt::encode_edge_ckpt(&edges),
        );
    }
}

fn standby_main<P>(
    cluster: &Cluster<M<P>>,
    shared: &Arc<Shared<P>>,
) -> Option<NodeOutcome<VcLocalGraph<P::Value>>>
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let ctx = cluster.wait_standby(Duration::from_secs(600))?;
    let mut st = NodeState::new(
        shared.cfg.num_nodes,
        Instant::now(),
        shared.cfg.sync_suppress,
    );
    let lg = match shared.cfg.ft {
        FtMode::Replication { .. } => rebirth_newbie(&ctx, shared, &mut st),
        FtMode::Checkpoint { .. } => ckpt_newbie(&ctx, shared, &mut st),
        FtMode::None => unreachable!("standbys are never dispatched without fault tolerance"),
    };
    Some(node_main(ctx, lg, shared, st))
}

fn node_main<P>(
    ctx: Ctx<P>,
    mut lg: VcLocalGraph<P::Value>,
    shared: &Arc<Shared<P>>,
    mut st: St<P>,
) -> NodeOutcome<VcLocalGraph<P::Value>>
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let me = ctx.id();
    st.sync_filter.set_domain(lg.verts.len() as u32);
    let threads = shared.cfg.threads_per_node;
    // Steady-state scratch, allocated once and reused every iteration: the
    // dst-grouped edge index, the partial/combined accumulator tables, the
    // sorted contribution list, and node-indexed send batches (Vec-indexed
    // so send order is deterministic, no per-iteration map allocation).
    let mut gather_index = VcGatherIndex::build(&lg);
    let mut partials: Vec<Option<P::Accum>> = Vec::new();
    let mut acc_table: Vec<Option<P::Accum>> = Vec::new();
    let mut contribs: Vec<(u32, NodeId, P::Accum)> = Vec::new();
    let mut gather_batches: Vec<Vec<(Vid, P::Accum)>> =
        (0..shared.cfg.num_nodes).map(|_| Vec::new()).collect();
    let mut sync_batches: Vec<Vec<VertexSync<P::Value>>> =
        (0..shared.cfg.num_nodes).map(|_| Vec::new()).collect();
    let mut ft_entries: Vec<u64> = vec![0; shared.cfg.num_nodes];
    loop {
        if st.iter >= shared.cfg.max_iters {
            break;
        }
        if shared
            .injector
            .should_fail(me, st.iter, FailPoint::BeforeBarrier)
        {
            ctx.die();
            return NodeOutcome::from_state(None, st);
        }
        let iter_sw = Stopwatch::start();
        let mut sw = Stopwatch::start();

        // Distributed gather: local partials flow to each vertex's master.
        // Own contributions go straight onto the contribution list tagged
        // with this node's ID so the later fold stays in sender order.
        vc_partial_gather_par(
            &lg,
            shared.prog.as_ref(),
            &gather_index,
            threads,
            &mut partials,
        );
        for (pos, slot) in partials.iter_mut().enumerate() {
            let Some(acc) = slot.take() else { continue };
            let v = &lg.verts[pos];
            if v.is_master() {
                contribs.push((pos as u32, me, acc));
            } else {
                gather_batches[v.master_node.index()].push((v.vid, acc));
            }
        }
        st.phases.record("gather", sw.lap());
        for (n, batch) in gather_batches.iter_mut().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let entries = batch.len() as u64;
            let bytes: u64 = batch
                .iter()
                .map(|(_, a)| 4 + shared.prog.accum_wire_bytes(a) as u64)
                .sum();
            st.comm.record(entries, bytes);
            ctx.send_kind(
                NodeId::from_index(n),
                VcMsg::Gather(std::mem::take(batch)),
                bytes,
                CommKind::Gather,
            );
        }
        st.phases.record("send", sw.lap());
        let (outcome, _) = ctx.enter_barrier_sum(0);
        st.phases.record("barrier", sw.lap());
        if let BarrierOutcome::Failed(dead) = outcome {
            contribs.clear();
            stash_non_data(&ctx, &mut st);
            let resume = st.iter;
            recover(&ctx, &mut lg, shared, &mut st, &dead, resume);
            gather_index = VcGatherIndex::build(&lg);
            continue;
        }

        // Apply at masters. A fast peer may already have sent this
        // iteration's Sync messages — keep them stashed for commit time.
        let mut pending = std::mem::take(&mut st.stash);
        pending.extend(ctx.drain());
        for env in pending {
            match env.msg {
                VcMsg::Gather(batch) => {
                    for (vid, acc) in batch {
                        let pos = lg.position(vid).expect("gather for unknown vertex");
                        debug_assert!(lg.verts[pos as usize].is_master());
                        contribs.push((pos, env.from, acc));
                    }
                }
                other => st.stash.push(Envelope {
                    from: env.from,
                    msg: other,
                }),
            }
        }
        // Each node contributes at most one partial per position, so sorting
        // by (position, sender) gives every master its contributions in the
        // same deterministic node order the serial engine used.
        contribs.sort_unstable_by_key(|&(pos, n, _)| (pos, n));
        acc_table.clear();
        acc_table.resize(lg.verts.len(), None);
        for (pos, _, acc) in contribs.drain(..) {
            let slot = &mut acc_table[pos as usize];
            *slot = Some(match slot.take() {
                None => acc,
                Some(a) => shared.prog.combine(a, acc),
            });
        }
        let updates = vc_apply_par(
            &lg,
            shared.prog.as_ref(),
            &mut acc_table,
            &shared.degrees,
            st.iter,
            threads,
        );
        st.phases.record("apply", sw.lap());

        // Broadcast new values to replicas (mirror dynamic state included),
        // addressed by destination-local position. The dense engine's
        // receivers apply the value only, so the redundant-sync filter keys
        // on the value alone (`activate` staged as `false`, matching the
        // full-sync rounds recovery sends).
        let mut suppressed = 0u64;
        for u in &updates {
            let v = &lg.verts[u.local as usize];
            let i = v.vid.index();
            if *shared.plan.selfish.get(i).unwrap_or(&false) {
                continue;
            }
            let meta = v.meta.as_ref().expect("master meta");
            let staged = st.sync_filter.stage(u.local, &u.value, false);
            for (&node, &rpos) in meta.replica_nodes.iter().zip(&meta.replica_positions) {
                if st.sync_filter.suppress(staged, node) {
                    suppressed += 1;
                    continue;
                }
                sync_batches[node.index()].push(VertexSync {
                    pos: rpos,
                    value: u.value.clone(),
                    activate: u.activate,
                });
                if shared
                    .plan
                    .extra_replicas
                    .get(i)
                    .is_some_and(|e| e.contains(&node))
                {
                    ft_entries[node.index()] += 1;
                }
            }
        }
        st.note_suppressed(suppressed);
        for (n, batch) in sync_batches.iter_mut().enumerate() {
            let ft = std::mem::take(&mut ft_entries[n]);
            if batch.is_empty() {
                continue;
            }
            let entries = batch.len() as u64;
            let bytes: u64 = batch
                .iter()
                .map(|s| {
                    VertexSync::<P::Value>::wire_bytes(shared.prog.value_wire_bytes(&s.value))
                        as u64
                })
                .sum();
            st.comm.record(entries, bytes);
            if ft > 0 {
                st.ft_comm.record(ft, bytes * ft / entries.max(1));
            }
            ctx.send_kind(
                NodeId::from_index(n),
                VcMsg::Sync(std::mem::take(batch)),
                bytes,
                CommKind::Sync,
            );
        }
        st.phases.record("send", sw.lap());
        let (outcome2, _) = ctx.enter_barrier_sum(0);
        st.phases.record("barrier", sw.lap());
        if let BarrierOutcome::Failed(dead) = outcome2 {
            st.sync_filter.rollback();
            drop(updates);
            stash_non_data(&ctx, &mut st);
            let resume = st.iter;
            recover(&ctx, &mut lg, shared, &mut st, &dead, resume);
            gather_index = VcGatherIndex::build(&lg);
            continue;
        }
        // The sync barrier passed: every record sent above is sitting in its
        // destination's inbox and will be applied — the staged filter state
        // becomes authoritative.
        st.sync_filter.commit();

        // Commit.
        if matches!(
            shared.cfg.ft,
            FtMode::Checkpoint {
                incremental: true,
                ..
            }
        ) {
            st.dirty.extend(updates.iter().map(|u| u.local));
        }
        let incoming = collect_syncs(&ctx, &mut st);
        let stats = vc_commit(&mut lg, updates, incoming);
        st.phases.record("commit", sw.lap());

        if let FtMode::Checkpoint {
            interval,
            incremental,
        } = shared.cfg.ft
        {
            if (st.iter + 1).is_multiple_of(interval) {
                let bytes = if incremental {
                    let mut dirty: Vec<u32> = st.dirty.drain().collect();
                    dirty.sort_unstable();
                    ckpt::encode_vc_snapshot_inc(&lg, st.iter + 1, &dirty)
                } else {
                    ckpt::encode_vc_snapshot(&lg, st.iter + 1)
                };
                shared
                    .dfs
                    .write(&format!("vc/ckpt/{}/{}", st.iter + 1, me.raw()), bytes);
                st.last_snapshot_iter = st.iter + 1;
                let d = sw.lap();
                st.ckpt_time += d;
                st.phases.record("ckpt", d);
            }
        }

        st.iter += 1;
        st.timeline.push((st.iter, st.start.elapsed()));
        let (outcome3, total_changed) = ctx.enter_barrier_sum(stats.changed as u64);
        st.phases.record("barrier", sw.lap());
        if st.iter <= st.replay_until {
            if let Some(r) = st.recoveries.last_mut() {
                r.replay += iter_sw.elapsed();
            }
        }
        if let BarrierOutcome::Failed(dead) = outcome3 {
            stash_non_data(&ctx, &mut st);
            let resume = st.iter;
            recover(&ctx, &mut lg, shared, &mut st, &dead, resume);
            gather_index = VcGatherIndex::build(&lg);
            continue;
        }
        if total_changed == 0 {
            // Converged: the job is over before any post-barrier crash can
            // strike (a machine lost after completion is outside the job's
            // lifetime and cannot be recovered by it).
            break;
        }
        if st.iter < shared.cfg.max_iters
            && shared
                .injector
                .should_fail(me, st.iter - 1, FailPoint::AfterBarrier)
        {
            ctx.die();
            return NodeOutcome::from_state(None, st);
        }
    }
    NodeOutcome::from_state(Some(lg), st)
}

fn collect_syncs<V, A>(ctx: &NodeCtx<VcMsg<V, A>>, st: &mut NodeState<VcMsg<V, A>>) -> Vec<(u32, V)>
where
    V: Send + 'static,
    A: Send + 'static,
{
    let mut out = Vec::new();
    let mut pending = std::mem::take(&mut st.stash);
    pending.extend(ctx.drain());
    for env in pending {
        match env.msg {
            VcMsg::Sync(batch) => {
                // Records are addressed by our local position — no per-record
                // vid-to-position map lookup.
                out.extend(batch.into_iter().map(|s| (s.pos, s.value)));
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    out
}

fn stash_non_data<V, A>(ctx: &NodeCtx<VcMsg<V, A>>, st: &mut NodeState<VcMsg<V, A>>)
where
    V: Send + 'static,
    A: Send + 'static,
{
    for env in ctx.drain() {
        if !matches!(env.msg, VcMsg::Sync(_) | VcMsg::Gather(_)) {
            st.stash.push(env);
        }
    }
}

fn round_msgs<V, A>(
    ctx: &NodeCtx<VcMsg<V, A>>,
    st: &mut NodeState<VcMsg<V, A>>,
) -> Vec<Envelope<VcMsg<V, A>>>
where
    V: Send + 'static,
    A: Send + 'static,
{
    let mut v = std::mem::take(&mut st.stash);
    v.extend(ctx.drain());
    v
}

fn recover<P>(
    ctx: &Ctx<P>,
    lg: &mut VcLocalGraph<P::Value>,
    shared: &Arc<Shared<P>>,
    st: &mut St<P>,
    dead: &[NodeId],
    resume_iter: u64,
) where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    match shared.cfg.ft {
        FtMode::None => panic!("node failure injected with fault tolerance disabled"),
        FtMode::Checkpoint { .. } => ckpt_recover_survivor(ctx, lg, shared, st, dead, resume_iter),
        FtMode::Replication {
            recovery: RecoveryStrategy::Rebirth,
            ..
        } => rebirth_survivor(ctx, lg, shared, st, dead, resume_iter),
        FtMode::Replication {
            recovery: RecoveryStrategy::Migration,
            ..
        } => migrate(ctx, lg, shared, st, dead),
    }
}

fn responsible_mirror(meta: &VcMeta, alive: &[bool]) -> Option<NodeId> {
    meta.mirror_nodes.iter().copied().find(|m| alive[m.index()])
}

// --------------------------------------------------------------------------
// Rebirth (§5.1, vertex-cut: vertices from survivors, edges from edge-ckpt)
// --------------------------------------------------------------------------

fn rebirth_survivor<P>(
    ctx: &Ctx<P>,
    lg: &mut VcLocalGraph<P::Value>,
    shared: &Arc<Shared<P>>,
    st: &mut St<P>,
    dead: &[NodeId],
    resume_iter: u64,
) where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let me = ctx.id();
    let survivors = st.mark_dead(dead);
    let num_survivors = survivors.len() as u32;
    if me == st.leader() {
        for &d in dead {
            assert!(
                ctx.cluster().dispatch_standby(d),
                "Rebirth recovery of {d} requires a hot standby"
            );
        }
    }
    ctx.enter_barrier();

    let sw = Stopwatch::start();
    let mut batches: HashMap<NodeId, Vec<VcRecoverEntry<P::Value>>> = HashMap::new();
    for d in dead {
        batches.insert(*d, Vec::new());
    }
    for v in &lg.verts {
        match v.kind {
            CopyKind::Master => {
                let meta = v.meta.as_ref().expect("master meta");
                for &d in dead {
                    if let Some(rpos) = meta.replica_position_on(d) {
                        let kind = if meta.mirror_nodes.contains(&d) {
                            CopyKind::Mirror
                        } else {
                            CopyKind::Replica
                        };
                        batches.get_mut(&d).unwrap().push(VcRecoverEntry {
                            vid: v.vid,
                            pos: rpos,
                            kind,
                            master_node: me,
                            value: v.value.clone(),
                            meta: (kind == CopyKind::Mirror).then(|| meta.clone()),
                        });
                    }
                }
            }
            CopyKind::Mirror => {
                let meta = v.meta.as_ref().expect("mirror meta");
                if !dead.contains(&v.master_node) {
                    continue;
                }
                if responsible_mirror(meta, &st.alive) != Some(me) {
                    continue;
                }
                batches
                    .get_mut(&v.master_node)
                    .unwrap()
                    .push(VcRecoverEntry {
                        vid: v.vid,
                        pos: meta.master_pos,
                        kind: CopyKind::Master,
                        master_node: v.master_node,
                        value: v.value.clone(),
                        meta: Some(meta.clone()),
                    });
                for &d in dead {
                    if d == v.master_node {
                        continue;
                    }
                    if let Some(rpos) = meta.replica_position_on(d) {
                        let kind = if meta.mirror_nodes.contains(&d) {
                            CopyKind::Mirror
                        } else {
                            CopyKind::Replica
                        };
                        batches.get_mut(&d).unwrap().push(VcRecoverEntry {
                            vid: v.vid,
                            pos: rpos,
                            kind,
                            master_node: v.master_node,
                            value: v.value.clone(),
                            meta: (kind == CopyKind::Mirror).then(|| meta.clone()),
                        });
                    }
                }
            }
            CopyKind::Replica => {}
        }
    }
    let mut recovered = 0u64;
    let mut comm = CommStats::default();
    for (d, entries) in batches {
        recovered += entries.len() as u64;
        let bytes: u64 = entries
            .iter()
            .map(|e| {
                VcRecoverEntry::<P::Value>::wire_bytes(shared.prog.value_wire_bytes(&e.value))
                    as u64
            })
            .sum();
        comm.record(1, bytes);
        ctx.send_kind(
            d,
            VcMsg::Rebirth(Box::new(VcRebirthBatch {
                resume_iter,
                num_survivors,
                entries,
            })),
            bytes,
            CommKind::Recovery,
        );
    }
    let reload = sw.elapsed();
    ctx.enter_barrier();
    for d in dead {
        st.alive[d.index()] = true;
    }
    st.recoveries.push(RecoveryReport {
        strategy: "rebirth",
        failed_nodes: dead.len(),
        reload,
        reconstruct: Duration::ZERO,
        replay: Duration::ZERO,
        vertices_recovered: recovered,
        edges_recovered: 0,
        comm,
    });
}

fn rebirth_newbie<P>(
    ctx: &Ctx<P>,
    shared: &Arc<Shared<P>>,
    st: &mut St<P>,
) -> VcLocalGraph<P::Value>
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let me = ctx.id();
    ctx.enter_barrier();

    // Reload: vertex copies from survivors, edges from the crashed node's
    // edge-ckpt files on the DFS (the paper overlaps the two; both are timed
    // inside the reload phase here).
    let sw = Stopwatch::start();
    let mut lg: VcLocalGraph<P::Value> = VcLocalGraph::empty(me);
    let mut got = 0u32;
    let mut expected: Option<u32> = None;
    let mut resume_iter = 0u64;
    while expected.is_none_or(|e| got < e) {
        let env = ctx
            .recv_timeout(RECOVERY_PATIENCE)
            .expect("rebirth batch from survivor");
        match env.msg {
            VcMsg::Rebirth(batch) => {
                expected = Some(batch.num_survivors);
                resume_iter = batch.resume_iter;
                got += 1;
                for e in batch.entries {
                    lg.insert_at(
                        e.pos,
                        VcVertex {
                            vid: e.vid,
                            kind: e.kind,
                            master_node: e.master_node,
                            value: e.value,
                            meta: e.meta,
                        },
                    );
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    let mut edges_recovered = 0u64;
    // Files may be read in any order without breaking bit-determinism: the
    // edge-ckpt split keys on the *target* vertex, so all contributions to
    // one gather destination live in a single file in their original
    // relative order — the per-destination fold order is reproduced exactly.
    for path in shared.dfs.list(&format!("vc/eckpt/{}/", me.raw())) {
        let bytes = shared.dfs.read(&path).expect("listed edge-ckpt readable");
        for (s, d, w) in ckpt::decode_edge_ckpt(&bytes).expect("edge-ckpt decodes") {
            let src = lg.position(s).expect("edge endpoint recovered");
            let dst = lg.position(d).expect("edge endpoint recovered");
            lg.edges.push(VcEdge {
                src,
                dst,
                weight: w,
            });
            edges_recovered += 1;
        }
    }
    let reload = sw.elapsed();

    let sw = Stopwatch::start();
    lg.debug_validate();
    let reconstruct = sw.elapsed();

    st.iter = resume_iter;
    st.recoveries.push(RecoveryReport {
        strategy: "rebirth",
        failed_nodes: 1,
        reload,
        reconstruct,
        replay: Duration::ZERO, // dense engine: the next apply refreshes all
        vertices_recovered: lg.verts.len() as u64,
        edges_recovered,
        comm: CommStats::default(),
    });
    ctx.enter_barrier();
    lg
}

// --------------------------------------------------------------------------
// Migration (§5.2, vertex-cut)
// --------------------------------------------------------------------------

#[allow(clippy::too_many_lines)]
fn migrate<P>(
    ctx: &Ctx<P>,
    lg: &mut VcLocalGraph<P::Value>,
    shared: &Arc<Shared<P>>,
    st: &mut St<P>,
    dead: &[NodeId],
) where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let me = ctx.id();
    let survivors = st.mark_dead(dead);
    let others: Vec<NodeId> = survivors.iter().copied().filter(|&n| n != me).collect();
    let tolerance = match shared.cfg.ft {
        FtMode::Replication { tolerance, .. } => tolerance,
        _ => unreachable!("migrate requires replication FT"),
    };
    let mut comm = CommStats::default();
    let mut recovered = 0u64;
    let mut edges_recovered = 0u64;
    let sw_total = Stopwatch::start();

    // ---- R1: promote local mirrors whose master died.
    let mut promotions: Vec<Promotion> = Vec::new();
    let mut dirty_masters: HashSet<u32> = HashSet::new();
    for pos in 0..lg.verts.len() {
        let v = &lg.verts[pos];
        match v.kind {
            CopyKind::Mirror if dead.contains(&v.master_node) => {
                let meta = v.meta.as_ref().expect("mirror meta");
                if responsible_mirror(meta, &st.alive) != Some(me) {
                    continue;
                }
                let old_node = v.master_node;
                let old_pos = meta.master_pos;
                let vid = v.vid;
                let v = &mut lg.verts[pos];
                v.kind = CopyKind::Master;
                v.master_node = me;
                let meta = v.meta.as_mut().unwrap();
                meta.master_pos = pos as u32;
                meta.purge_node(me);
                for &d in dead {
                    meta.purge_node(d);
                }
                promotions.push(Promotion {
                    vid,
                    new_master: me,
                    new_pos: pos as u32,
                    old_node,
                    old_pos,
                });
                dirty_masters.insert(pos as u32);
                st.overlay.insert(vid, me);
                recovered += 1;
            }
            CopyKind::Master => {
                let v = &mut lg.verts[pos];
                let meta = v.meta.as_mut().expect("master meta");
                let before = meta.replica_nodes.len() + meta.mirror_nodes.len();
                for &d in dead {
                    meta.purge_node(d);
                }
                if meta.replica_nodes.len() + meta.mirror_nodes.len() != before {
                    dirty_masters.insert(pos as u32);
                }
            }
            _ => {}
        }
    }
    for &n in &others {
        let bytes = (promotions.len() * 20) as u64;
        comm.record(1, bytes);
        ctx.send_kind(
            n,
            VcMsg::Promote(promotions.clone()),
            bytes,
            CommKind::Recovery,
        );
    }
    ctx.enter_barrier();

    // ---- R2: apply promotions; reload this node's share of the crashed
    //      nodes' edges from the edge-ckpt files; request missing endpoints.
    for env in round_msgs(ctx, st) {
        match env.msg {
            VcMsg::Promote(batch) => {
                for p in batch {
                    st.overlay.insert(p.vid, p.new_master);
                    if p.new_master == me {
                        continue;
                    }
                    if let Some(pos) = lg.position(p.vid) {
                        let v = &mut lg.verts[pos as usize];
                        v.master_node = p.new_master;
                        if let Some(meta) = v.meta.as_mut() {
                            meta.master_pos = p.new_pos;
                            for &d in dead {
                                meta.purge_node(d);
                            }
                            meta.purge_node(p.new_master);
                        }
                    }
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    let mut adopted: Vec<(Vid, Vid, f32)> = Vec::new();
    for &d in dead {
        let path = format!("vc/eckpt/{}/{}", d.raw(), me.raw());
        if let Some(bytes) = shared.dfs.read(&path) {
            adopted.extend(ckpt::decode_edge_ckpt(&bytes).expect("edge-ckpt decodes"));
        }
    }
    // Under simultaneous failures a crashed node's file may be addressed to
    // another crashed node; the recovery leader adopts those orphans.
    if me == st.leader() {
        for &owner in dead {
            for &receiver in dead {
                let path = format!("vc/eckpt/{}/{}", owner.raw(), receiver.raw());
                if let Some(bytes) = shared.dfs.read(&path) {
                    adopted.extend(ckpt::decode_edge_ckpt(&bytes).expect("edge-ckpt decodes"));
                }
            }
        }
    }
    let mut requests: HashMap<NodeId, Vec<Vid>> = HashMap::new();
    let mut requested: HashSet<Vid> = HashSet::new();
    for &(s, d, _) in &adopted {
        for vid in [s, d] {
            if lg.position(vid).is_none() && requested.insert(vid) {
                let owner = st
                    .overlay
                    .get(&vid)
                    .copied()
                    .unwrap_or_else(|| NodeId::new(shared.owners[vid.index()]));
                debug_assert!(st.alive[owner.index()], "endpoint {vid} has no live master");
                debug_assert_ne!(owner, me);
                requests.entry(owner).or_default().push(vid);
            }
        }
    }
    for &n in &others {
        let req = requests.remove(&n).unwrap_or_default();
        let bytes = (req.len() * 4) as u64;
        comm.record(1, bytes);
        ctx.send_kind(n, VcMsg::ReplicaRequest(req), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R3: grant requested copies.
    let mut grants: HashMap<NodeId, Vec<ReplicaGrant<P::Value>>> = HashMap::new();
    for env in round_msgs(ctx, st) {
        match env.msg {
            VcMsg::ReplicaRequest(req) => {
                for vid in req {
                    let pos = lg
                        .position(vid)
                        .unwrap_or_else(|| panic!("request for {vid} but no copy on {me}"));
                    let v = &lg.verts[pos as usize];
                    debug_assert!(v.is_master(), "replica request routed to non-master");
                    grants.entry(env.from).or_default().push(ReplicaGrant {
                        vid,
                        value: v.value.clone(),
                        last_activate: false,
                        master_node: me,
                    });
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    for &n in &others {
        let g = grants.remove(&n).unwrap_or_default();
        let bytes: u64 = g
            .iter()
            .map(|x| 16 + shared.prog.value_wire_bytes(&x.value) as u64)
            .sum();
        comm.record(1, bytes);
        ctx.send_kind(n, VcMsg::ReplicaGrant(g), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R4: place granted copies, adopt the reloaded edges, report
    //      placements.
    let mut placements: HashMap<NodeId, Vec<(Vid, u32)>> = HashMap::new();
    for env in round_msgs(ctx, st) {
        match env.msg {
            VcMsg::ReplicaGrant(gs) => {
                for g in gs {
                    debug_assert!(lg.position(g.vid).is_none());
                    let master_node = g.master_node;
                    let vid = g.vid;
                    let pos = lg.insert_or_position(VcVertex {
                        vid,
                        kind: CopyKind::Replica,
                        master_node,
                        value: g.value,
                        meta: None,
                    });
                    placements.entry(master_node).or_default().push((vid, pos));
                    recovered += 1;
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    for (s, d, w) in adopted {
        let src = lg.position(s).expect("endpoint granted or local");
        let dst = lg.position(d).expect("endpoint granted or local");
        lg.edges.push(VcEdge {
            src,
            dst,
            weight: w,
        });
        edges_recovered += 1;
    }
    for &n in &others {
        let p = placements.remove(&n).unwrap_or_default();
        let bytes = (p.len() * 8) as u64;
        comm.record(1, bytes);
        ctx.send_kind(n, VcMsg::ReplicaPlaced(p), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R5: register placements; restore the FT level.
    for env in round_msgs(ctx, st) {
        match env.msg {
            VcMsg::ReplicaPlaced(ps) => {
                for (vid, pos) in ps {
                    let mpos = lg.position(vid).expect("placement for unknown master");
                    lg.verts[mpos as usize]
                        .meta
                        .as_mut()
                        .expect("master meta")
                        .register_replica(env.from, pos);
                    dirty_masters.insert(mpos);
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    // The FT level cannot exceed the surviving cluster's capacity: each
    // mirror needs a distinct node other than the master's.
    let restorable = tolerance.min(survivors.len().saturating_sub(1));
    let mut mirror_updates: HashMap<NodeId, Vec<MirrorUpdate<P::Value, VcMeta>>> = HashMap::new();
    for pos in 0..lg.verts.len() {
        if !lg.verts[pos].is_master() {
            continue;
        }
        loop {
            let v = &lg.verts[pos];
            let meta = v.meta.as_ref().expect("master meta");
            if meta.mirror_nodes.len() >= restorable {
                break;
            }
            let candidate = meta
                .replica_nodes
                .iter()
                .copied()
                .filter(|n| !meta.mirror_nodes.contains(n))
                .min_by_key(|n| (st.mirror_assign[n.index()], n.index()));
            let (target, fresh) = match candidate {
                Some(n) => (n, false),
                None => {
                    let n = survivors
                        .iter()
                        .copied()
                        .filter(|&n| n != me && !meta.replica_nodes.contains(&n))
                        .min_by_key(|n| (st.mirror_assign[n.index()], n.index()))
                        .expect("enough survivors to restore the FT level");
                    (n, true)
                }
            };
            st.mirror_assign[target.index()] += 1;
            let v = &mut lg.verts[pos];
            let meta = v.meta.as_mut().unwrap();
            meta.mirror_nodes.push(target);
            mirror_updates
                .entry(target)
                .or_default()
                .push(MirrorUpdate {
                    vid: v.vid,
                    meta: Box::new(VcMeta::clone(v.meta.as_ref().unwrap())),
                    value: fresh.then(|| v.value.clone()),
                    last_activate: false,
                    master_node: me,
                });
            dirty_masters.insert(pos as u32);
        }
    }
    for &n in &others {
        let ups = mirror_updates.remove(&n).unwrap_or_default();
        let bytes = (ups.len() * 64) as u64;
        comm.record(1, bytes);
        ctx.send_kind(n, VcMsg::MirrorUpdate(ups), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R6: adopt mirror designations; report fresh placements.
    let mut fresh_placements: HashMap<NodeId, Vec<(Vid, u32)>> = HashMap::new();
    for env in round_msgs(ctx, st) {
        match env.msg {
            VcMsg::MirrorUpdate(ups) => {
                for u in ups {
                    match lg.position(u.vid) {
                        Some(pos) => {
                            let v = &mut lg.verts[pos as usize];
                            v.kind = CopyKind::Mirror;
                            v.meta = Some(u.meta);
                            v.master_node = u.master_node;
                        }
                        None => {
                            let value = u.value.expect("fresh FT replica carries its value");
                            let vid = u.vid;
                            let master_node = u.master_node;
                            let pos = lg.insert_or_position(VcVertex {
                                vid,
                                kind: CopyKind::Mirror,
                                master_node,
                                value,
                                meta: Some(u.meta),
                            });
                            fresh_placements
                                .entry(master_node)
                                .or_default()
                                .push((vid, pos));
                        }
                    }
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    for &n in &others {
        let p = fresh_placements.remove(&n).unwrap_or_default();
        let bytes = (p.len() * 8) as u64;
        comm.record(1, bytes);
        ctx.send_kind(n, VcMsg::ReplicaPlaced(p), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R7: register fresh placements; refresh dirty masters' mirrors.
    for env in round_msgs(ctx, st) {
        match env.msg {
            VcMsg::ReplicaPlaced(ps) => {
                for (vid, pos) in ps {
                    let mpos = lg.position(vid).expect("placement for unknown master");
                    lg.verts[mpos as usize]
                        .meta
                        .as_mut()
                        .expect("master meta")
                        .register_replica(env.from, pos);
                    dirty_masters.insert(mpos);
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    let mut refreshes: HashMap<NodeId, Vec<MirrorUpdate<P::Value, VcMeta>>> = HashMap::new();
    for &pos in &dirty_masters {
        let v = &lg.verts[pos as usize];
        if !v.is_master() {
            continue;
        }
        let meta = v.meta.as_ref().expect("master meta");
        for &m in &meta.mirror_nodes {
            refreshes.entry(m).or_default().push(MirrorUpdate {
                vid: v.vid,
                meta: Box::new(VcMeta::clone(meta)),
                value: None,
                last_activate: false,
                master_node: me,
            });
        }
    }
    for &n in &others {
        let ups = refreshes.remove(&n).unwrap_or_default();
        let bytes = (ups.len() * 64) as u64;
        comm.record(1, bytes);
        ctx.send_kind(n, VcMsg::MirrorUpdate(ups), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R8: adopt refreshes; rewrite this node's edge-ckpt files (they
    //      must now also cover the adopted edges); leader acknowledges.
    for env in round_msgs(ctx, st) {
        match env.msg {
            VcMsg::MirrorUpdate(ups) => {
                for u in ups {
                    let pos = lg.position(u.vid).expect("meta refresh for unknown copy");
                    let v = &mut lg.verts[pos as usize];
                    debug_assert!(!v.is_master());
                    v.kind = CopyKind::Mirror;
                    v.master_node = u.master_node;
                    v.meta = Some(u.meta);
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    if edges_recovered > 0 {
        write_edge_ckpt_files(lg, shared);
    }
    if me == st.leader() {
        for &d in dead {
            ctx.cluster().coordinator().ack_recovered(d);
        }
    }
    ctx.enter_barrier();

    st.recoveries.push(RecoveryReport {
        strategy: "migration",
        failed_nodes: dead.len(),
        reload: sw_total.elapsed(),
        reconstruct: Duration::ZERO,
        replay: Duration::ZERO,
        vertices_recovered: recovered,
        edges_recovered,
        comm,
    });
}

// --------------------------------------------------------------------------
// Checkpoint recovery
// --------------------------------------------------------------------------

fn ckpt_recover_survivor<P>(
    ctx: &Ctx<P>,
    lg: &mut VcLocalGraph<P::Value>,
    shared: &Arc<Shared<P>>,
    st: &mut St<P>,
    dead: &[NodeId],
    resume_iter: u64,
) where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let me = ctx.id();
    st.mark_dead(dead);
    if me == st.leader() {
        for &d in dead {
            assert!(
                ctx.cluster().dispatch_standby(d),
                "checkpoint recovery of {d} requires a standby"
            );
        }
    }
    ctx.enter_barrier();

    let sw = Stopwatch::start();
    let incremental = matches!(
        shared.cfg.ft,
        FtMode::Checkpoint {
            incremental: true,
            ..
        }
    );
    let snap_iter = if st.last_snapshot_iter == 0 {
        // Every local copy (replicas included) resets to initial state: the
        // sync filter's last-shipped entries describe nothing any more.
        for v in lg.verts.iter_mut() {
            v.value = shared.prog.init(v.vid, &shared.degrees);
        }
        st.sync_filter.clear();
        0
    } else if incremental {
        for v in lg.verts.iter_mut() {
            v.value = shared.prog.init(v.vid, &shared.degrees);
        }
        st.sync_filter.clear();
        apply_vc_snapshot_chain(lg, shared, me, true)
    } else {
        // Full snapshots restore masters only; surviving peers' replicas
        // still hold our last-shipped values, so the filter entries stay
        // valid toward survivors — only the rebuilt nodes must be re-shipped
        // unconditionally in the full-sync round below.
        for &d in dead {
            st.sync_filter.invalidate_dest(d);
        }
        let bytes = shared
            .dfs
            .read(&format!("vc/ckpt/{}/{}", st.last_snapshot_iter, me.raw()))
            .expect("own snapshot present");
        ckpt::apply_vc_snapshot(lg, &bytes).expect("snapshot decodes")
    };
    st.dirty.clear();
    let reload = sw.elapsed();
    ctx.enter_barrier();

    let sw = Stopwatch::start();
    ckpt_full_sync(ctx, lg, shared, st);
    let reconstruct = sw.elapsed();

    st.iter = snap_iter;
    st.replay_until = resume_iter;
    st.recoveries.push(RecoveryReport {
        strategy: "checkpoint",
        failed_nodes: dead.len(),
        reload,
        reconstruct,
        replay: Duration::ZERO,
        vertices_recovered: lg.num_masters() as u64,
        edges_recovered: 0,
        comm: CommStats::default(),
    });
    for d in dead {
        st.alive[d.index()] = true;
    }
}

fn ckpt_newbie<P>(ctx: &Ctx<P>, shared: &Arc<Shared<P>>, st: &mut St<P>) -> VcLocalGraph<P::Value>
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let me = ctx.id();
    ctx.enter_barrier();
    let sw = Stopwatch::start();
    let meta_bytes = shared
        .dfs
        .read(&format!("vc/meta/{}", me.raw()))
        .expect("metadata snapshot written at load");
    let mut lg: VcLocalGraph<P::Value> =
        ckpt::decode_vc_graph(&meta_bytes).expect("metadata snapshot decodes");
    let incremental = matches!(
        shared.cfg.ft,
        FtMode::Checkpoint {
            incremental: true,
            ..
        }
    );
    let snap_iter = apply_vc_snapshot_chain(&mut lg, shared, me, incremental);
    let reload = sw.elapsed();
    ctx.enter_barrier();

    let sw = Stopwatch::start();
    ckpt_full_sync(ctx, &mut lg, shared, st);
    let reconstruct = sw.elapsed();

    st.iter = snap_iter;
    st.last_snapshot_iter = snap_iter;
    st.recoveries.push(RecoveryReport {
        strategy: "checkpoint",
        failed_nodes: 1,
        reload,
        reconstruct,
        replay: Duration::ZERO,
        vertices_recovered: lg.verts.len() as u64,
        edges_recovered: lg.edges.len() as u64,
        comm: CommStats::default(),
    });
    lg
}

/// Applies this node's snapshots in ascending iteration order (the full
/// chain for incremental mode, only the newest otherwise).
fn apply_vc_snapshot_chain<P>(
    lg: &mut VcLocalGraph<P::Value>,
    shared: &Arc<Shared<P>>,
    me: NodeId,
    incremental: bool,
) -> u64
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    let mut iters: Vec<u64> = shared
        .dfs
        .list("vc/ckpt/")
        .iter()
        .filter_map(|p| {
            let mut parts = p.split('/').skip(2);
            let iter: u64 = parts.next()?.parse().ok()?;
            let node: u32 = parts.next()?.parse().ok()?;
            (node == me.raw()).then_some(iter)
        })
        .collect();
    iters.sort_unstable();
    if !incremental {
        iters = iters.split_off(iters.len().saturating_sub(1));
    }
    let mut snap_iter = 0;
    for iter in iters {
        let bytes = shared
            .dfs
            .read(&format!("vc/ckpt/{}/{}", iter, me.raw()))
            .expect("listed snapshot readable");
        snap_iter = if incremental {
            ckpt::apply_vc_snapshot_inc(lg, &bytes).expect("snapshot decodes")
        } else {
            ckpt::apply_vc_snapshot(lg, &bytes).expect("snapshot decodes")
        };
    }
    snap_iter
}

fn ckpt_full_sync<P>(
    ctx: &Ctx<P>,
    lg: &mut VcLocalGraph<P::Value>,
    shared: &Arc<Shared<P>>,
    st: &mut St<P>,
) where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
{
    // Re-ship every master's value to every replica, skipping records the
    // redundant-sync filter proves redundant: full snapshots cover masters
    // only, so a surviving destination's replicas still hold our last-shipped
    // values, and any record bitwise identical to its filter entry would
    // install exactly what the replica already has. Destinations rebuilt from
    // snapshots were invalidated by the caller and receive the full round.
    let mut batches: HashMap<NodeId, Vec<VertexSync<P::Value>>> = HashMap::new();
    let mut suppressed = 0u64;
    for (pos, v) in lg.verts.iter().enumerate() {
        if !v.is_master() {
            continue;
        }
        let meta = v.meta.as_ref().expect("master meta");
        let staged = st.sync_filter.stage(pos as u32, &v.value, false);
        for (&node, &rpos) in meta.replica_nodes.iter().zip(&meta.replica_positions) {
            if st.sync_filter.suppress(staged, node) {
                suppressed += 1;
                continue;
            }
            batches.entry(node).or_default().push(VertexSync {
                pos: rpos,
                value: v.value.clone(),
                activate: false,
            });
        }
    }
    // This round covers every (master, destination) pair, so the staged
    // values become authoritative immediately and every destination is valid
    // again afterwards. Failures only inject at iteration boundaries — the
    // round itself cannot be interrupted.
    st.sync_filter.commit();
    st.note_suppressed(suppressed);
    for (node, batch) in batches {
        let bytes: u64 = batch
            .iter()
            .map(|s| {
                VertexSync::<P::Value>::wire_bytes(shared.prog.value_wire_bytes(&s.value)) as u64
            })
            .sum();
        ctx.send_kind(node, VcMsg::Sync(batch), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();
    let incoming = collect_syncs(ctx, st);
    for (pos, value) in incoming {
        lg.verts[pos as usize].value = value;
    }
    ctx.enter_barrier();
    st.sync_filter.revalidate_all();
}

//! The vertex-cut (PowerLyra) model plugged into the shared superstep
//! driver. The BSP loop, failure dispatch, and Rebirth / Migration /
//! checkpoint recovery live in `driver.rs` and `recovery.rs`. What stays
//! here is genuinely vertex-cut (§4.3/§6.10): gather is distributed
//! (partial accumulators flow to masters, adding a third barrier per
//! iteration), vertices are *dense* (every master re-applies each
//! iteration), and edges are not replicated in mirrors — each node persists
//! its owned edges to per-receiver **edge-ckpt files** on the DFS at load,
//! which Migration reloads in parallel and Rebirth replays on the newbie.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use imitator_cluster::{BarrierOutcome, Envelope, FailurePlan, NodeId};
use imitator_engine::{
    vc_apply_chunks, vc_commit, vc_gather_chunks, CopyKind, Degrees, FtPlan, VcEdge, VcGatherIndex,
    VcLocalGraph, VcMeta, VcVertex, VertexProgram, WorkerPool,
};
use imitator_graph::{Graph, Vid};
use imitator_metrics::{CommKind, MemSize, Stopwatch};
use imitator_partition::VertexCut;
use imitator_storage::codec::{Decode, Encode};
use imitator_storage::Dfs;

use crate::ckpt;
use crate::driver::{self, ComputeModel, Ctx, ModelGraph, Shared, St, StepOutcome, SyncBufs};
use crate::msg::{MirrorUpdate, Promotion, ProtoMsg, ReplicaGrant, VcRecoverEntry, VertexSync};
use crate::plan::compute_ft_plan;
use crate::recovery::{Adoption, Mig, MigEnv};
use crate::report::RunReport;
use crate::{FtMode, RunConfig};

/// Runs a vertex program over `g` on a simulated cluster partitioned by the
/// vertex-cut `cut`, under the configured fault-tolerance mode, with the
/// scheduled failures injected. The engine is dense: every vertex re-applies
/// each iteration until no master's value changes (or `max_iters`).
///
/// # Panics
///
/// Panics if `cfg.num_nodes != cut.num_parts()` or if a failure is injected
/// with `FtMode::None`. Standby exhaustion does not panic: Rebirth degrades
/// to Migration onto the survivors, and checkpoint recovery grafts the dead
/// partitions' snapshots onto the survivors (§5.3).
pub fn run_vertex_cut<P>(
    g: &Graph,
    cut: &VertexCut,
    prog: Arc<P>,
    cfg: RunConfig,
    failures: Vec<FailurePlan>,
    dfs: Dfs,
) -> RunReport<P::Value>
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
    P::Accum: Encode + Decode,
{
    assert_eq!(
        cfg.num_nodes,
        cut.num_parts(),
        "config node count must match the partitioning"
    );
    let degrees = Arc::new(Degrees::of(g));
    let plan = Arc::new(match cfg.ft {
        FtMode::Replication {
            tolerance,
            selfish_opt,
            ..
        } => compute_ft_plan(
            g,
            cut,
            tolerance,
            selfish_opt,
            prog.selfish_compatible(),
            0xF7,
        ),
        _ => FtPlan::none(g.num_vertices()),
    });
    let lgs = imitator_engine::build_vertex_cut_graphs(g, cut, &plan, prog.as_ref(), &degrees);
    let owners: Arc<Vec<u32>> = Arc::new(g.vertices().map(|v| cut.master(v) as u32).collect());
    driver::run(
        VcModel { prog },
        g.num_vertices(),
        lgs,
        degrees,
        plan,
        owners,
        cfg,
        failures,
        dfs,
    )
}

/// The vertex-cut compute model: distributed gather → apply at masters →
/// sync, two communication rounds per superstep.
pub(crate) struct VcModel<P: VertexProgram> {
    pub(crate) prog: Arc<P>,
}

/// Per-node vertex-cut scratch, allocated once and reused every iteration.
/// The gather index sits behind an `Arc` so pooled gather chunks can borrow
/// it while the main thread routes earlier chunks' partials.
pub(crate) struct VcScratch<P: VertexProgram> {
    bufs: SyncBufs<P::Value>,
    gather_index: Arc<VcGatherIndex>,
    acc_table: Vec<Option<P::Accum>>,
    contribs: Vec<(u32, NodeId, P::Accum)>,
    gather_batches: Vec<Vec<(Vid, P::Accum)>>,
    /// Per-dest gather totals for the whole superstep; shipped batches add
    /// here and one `CommStats` record per dest is flushed at the tail, so
    /// accounting is identical whether batches ship per chunk (pipelined)
    /// or once per superstep (strict).
    gather_entries: Vec<u64>,
    gather_bytes: Vec<u64>,
    /// Previous record's vid per destination — running base of the gather
    /// frame's delta vid column; persists across chunk ships, reset at flush.
    gather_prev: Vec<u32>,
}

/// Migration state the generic rounds don't know about: edges adopted from
/// the crashed nodes' edge-ckpt files, wired after grant placement.
#[derive(Default)]
pub(crate) struct VcMigExtra {
    adopted: Vec<(Vid, Vid, f32)>,
}

impl<V> ModelGraph for VcLocalGraph<V> {
    type Value = V;
    type Meta = VcMeta;

    fn len(&self) -> usize {
        self.verts.len()
    }
    fn position(&self, vid: Vid) -> Option<u32> {
        VcLocalGraph::position(self, vid)
    }
    fn num_masters(&self) -> usize {
        VcLocalGraph::num_masters(self)
    }
    fn vid(&self, pos: u32) -> Vid {
        self.verts[pos as usize].vid
    }
    fn kind(&self, pos: u32) -> CopyKind {
        self.verts[pos as usize].kind
    }
    fn set_kind(&mut self, pos: u32, kind: CopyKind) {
        self.verts[pos as usize].kind = kind;
    }
    fn master_node(&self, pos: u32) -> NodeId {
        self.verts[pos as usize].master_node
    }
    fn set_master_node(&mut self, pos: u32, node: NodeId) {
        self.verts[pos as usize].master_node = node;
    }
    fn value(&self, pos: u32) -> &V {
        &self.verts[pos as usize].value
    }
    fn meta(&self, pos: u32) -> Option<&VcMeta> {
        self.verts[pos as usize].meta.as_deref()
    }
    fn meta_mut(&mut self, pos: u32) -> Option<&mut VcMeta> {
        self.verts[pos as usize].meta.as_deref_mut()
    }
    fn set_meta(&mut self, pos: u32, meta: Box<VcMeta>) {
        self.verts[pos as usize].meta = Some(meta);
    }
}

/// Ships every non-empty per-destination gather batch to its master's node,
/// folding entry/byte counts into the scratch superstep totals (recorded
/// once after the gather phase, so the logical accounting is identical
/// whether batches ship per chunk or once per superstep). Returns the
/// number of envelopes shipped.
fn ship_gather_batches<P>(ctx: &Ctx<VcModel<P>>, prog: &P, scratch: &mut VcScratch<P>) -> u64
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
    P::Accum: Encode + Decode,
{
    let mut shipped = 0u64;
    for n in 0..scratch.gather_batches.len() {
        if scratch.gather_batches[n].is_empty() {
            continue;
        }
        // Columnar gather-frame columns: vid as a zigzag-varint delta from
        // the previous record toward this destination, then the accumulator
        // bytes. The per-frame header is charged once at the totals flush.
        let mut bytes = 0u64;
        let mut prev = scratch.gather_prev[n];
        for (vid, a) in &scratch.gather_batches[n] {
            let vid_bytes = crate::wire::col_delta_bytes(vid.raw(), prev);
            bytes += vid_bytes + prog.accum_wire_bytes(a) as u64;
            prev = vid.raw();
        }
        scratch.gather_prev[n] = prev;
        scratch.gather_entries[n] += scratch.gather_batches[n].len() as u64;
        scratch.gather_bytes[n] += bytes;
        ctx.send_kind(
            NodeId::from_index(n),
            ProtoMsg::Gather(std::mem::take(&mut scratch.gather_batches[n])),
            bytes,
            CommKind::Gather,
        );
        shipped += 1;
    }
    shipped
}

impl<P> ComputeModel for VcModel<P>
where
    P: VertexProgram,
    P::Value: Encode + Decode + MemSize,
    P::Accum: Encode + Decode,
{
    type Value = P::Value;
    type Accum = P::Accum;
    type Entry = VcRecoverEntry<P::Value>;
    type Meta = VcMeta;
    type Graph = VcLocalGraph<P::Value>;
    type Scratch = VcScratch<P>;
    type MigExtra = VcMigExtra;

    const PREFIX: &'static str = "vc";

    fn value_wire_bytes(&self, v: &Self::Value) -> usize {
        self.prog.value_wire_bytes(v)
    }

    fn init_scratch(&self, lg: &Self::Graph, shared: &Shared<Self>) -> Self::Scratch {
        VcScratch {
            bufs: SyncBufs::new(shared.cfg.num_nodes),
            gather_index: Arc::new(VcGatherIndex::build(lg)),
            acc_table: Vec::new(),
            contribs: Vec::new(),
            gather_batches: vec![Vec::new(); shared.cfg.num_nodes],
            gather_entries: vec![0; shared.cfg.num_nodes],
            gather_bytes: vec![0; shared.cfg.num_nodes],
            gather_prev: vec![0; shared.cfg.num_nodes],
        }
    }

    /// Recovery restructures the local edge list, invalidating the gather
    /// index.
    fn refresh_scratch(&self, scratch: &mut Self::Scratch, lg: &Self::Graph) {
        scratch.gather_index = Arc::new(VcGatherIndex::build(lg));
    }

    /// With replication FT, persist this node's owned edges as per-receiver
    /// edge-ckpt files before the first superstep (§4.3).
    fn on_load(&self, lg: &Self::Graph, shared: &Shared<Self>) {
        if matches!(shared.cfg.ft, FtMode::Replication { .. }) {
            write_edge_ckpt_files(lg, &shared.dfs);
        }
    }

    /// Distributed gather (partials → masters, barrier), then apply at
    /// masters, sync, barrier, commit.
    ///
    /// Gather and apply chunks run on the persistent pool; with pipelining
    /// each chunk's gather/sync batches ship as soon as the chunk (and all
    /// earlier chunks) completed, the barriers fencing only the tail.
    /// Chunks arrive in submission (ascending-range) order, so contrib
    /// order, staging order, and byte accounting equal the serial order
    /// exactly; receivers additionally sort contribs by `(pos, sender)`, so
    /// splitting one Gather envelope into per-chunk envelopes is
    /// value-neutral.
    fn superstep(
        &self,
        ctx: &Ctx<Self>,
        lg: &mut Arc<Self::Graph>,
        shared: &Shared<Self>,
        st: &mut St<Self>,
        scratch: &mut Self::Scratch,
        pool: &WorkerPool,
    ) -> StepOutcome {
        let me = ctx.id();
        let mut sw = Stopwatch::start();
        let mut gchunks = vc_gather_chunks(pool, lg, &self.prog, &scratch.gather_index);
        while let Some((range, part)) = gchunks.next() {
            let outstanding = gchunks.outstanding() > 0;
            let route_sw = Stopwatch::start();
            for (i, slot) in part.into_iter().enumerate() {
                let Some(acc) = slot else { continue };
                let pos = range.start + i;
                let v = &lg.verts[pos];
                if v.is_master() {
                    scratch.contribs.push((pos as u32, me, acc));
                } else {
                    scratch.gather_batches[v.master_node.index()].push((v.vid, acc));
                }
            }
            let shipped = if shared.cfg.pipeline {
                ship_gather_batches(ctx, self.prog.as_ref(), scratch)
            } else {
                0
            };
            if outstanding {
                // Routing/shipping overlapped with outstanding gather work.
                let d = route_sw.elapsed();
                st.pool.overlap += d;
                st.phases.record("overlap", d);
                st.pool.early_batches += shipped;
            }
        }
        st.phases.record("gather", sw.lap());

        // Strict mode ships once per superstep here; pipelined mode already
        // shipped per chunk and only flushes the accounting totals.
        ship_gather_batches(ctx, self.prog.as_ref(), scratch);
        for n in 0..shared.cfg.num_nodes {
            let entries = std::mem::take(&mut scratch.gather_entries[n]);
            let col_bytes = std::mem::take(&mut scratch.gather_bytes[n]);
            scratch.gather_prev[n] = 0;
            if entries > 0 {
                // One gather-frame header (tag + count) per destination per
                // superstep — a superstep's contributions toward one
                // destination are one frame, however many chunks shipped.
                let frame = col_bytes + crate::wire::small_frame_overhead(entries);
                st.comm.record(entries, frame);
            }
        }
        st.phases.record("send", sw.lap());

        let (outcome, _) = ctx.enter_barrier_sum(0);
        st.phases.record("barrier", sw.lap());
        if let BarrierOutcome::Failed(dead) = outcome {
            // Local partials were never applied; drop them and let the
            // recovered superstep regather. Nothing was staged in the sync
            // filter yet.
            scratch.contribs.clear();
            return StepOutcome::Failed(dead);
        }

        // Apply: fold remote partials (from the stash + queue) into the
        // local ones. Sort by (position, sender) so combine order is
        // deterministic regardless of arrival order.
        let mut pending = std::mem::take(&mut st.stash);
        pending.extend(ctx.drain());
        for env in pending {
            match env.msg {
                ProtoMsg::Gather(batch) => {
                    for (vid, acc) in batch {
                        let pos = lg.position(vid).expect("gather for unknown vertex");
                        debug_assert!(lg.verts[pos as usize].is_master());
                        scratch.contribs.push((pos, env.from, acc));
                    }
                }
                other => st.stash.push(Envelope {
                    from: env.from,
                    msg: other,
                }),
            }
        }
        scratch
            .contribs
            .sort_unstable_by_key(|&(pos, n, _)| (pos, n));
        scratch.acc_table.clear();
        scratch.acc_table.resize(lg.verts.len(), None);
        for (pos, _, acc) in scratch.contribs.drain(..) {
            let slot = &mut scratch.acc_table[pos as usize];
            *slot = Some(match slot.take() {
                None => acc,
                Some(a) => self.prog.combine(a, acc),
            });
        }
        let mut achunks = vc_apply_chunks(
            pool,
            lg,
            &self.prog,
            &shared.degrees,
            st.iter,
            std::mem::take(&mut scratch.acc_table),
        );
        let updates = driver::pump_update_syncs::<Self>(
            ctx,
            &**lg,
            shared,
            st,
            &mut scratch.bufs,
            &mut achunks,
            &mut sw,
            "apply",
            false,
        );

        let (outcome, _) = ctx.enter_barrier_sum(0);
        st.phases.record("barrier", sw.lap());
        if let BarrierOutcome::Failed(dead) = outcome {
            st.sync_filter.rollback();
            drop(updates);
            return StepOutcome::Failed(dead);
        }
        st.sync_filter.commit();

        driver::note_dirty::<Self>(st, &shared.cfg, &updates);
        let incoming: Vec<(u32, P::Value)> = driver::collect_syncs::<Self>(ctx, st)
            .into_iter()
            .map(|s| (s.pos, s.value))
            .collect();
        let stats = vc_commit(driver::graph_mut(lg), updates, incoming);
        st.phases.record("commit", sw.lap());
        StepOutcome::Committed(stats.changed as u64)
    }

    fn encode_graph(&self, lg: &Self::Graph) -> Vec<u8> {
        ckpt::encode_vc_graph(lg)
    }
    fn decode_graph(&self, bytes: &[u8]) -> Self::Graph {
        ckpt::decode_vc_graph(bytes).expect("metadata snapshot decodes")
    }
    fn encode_snapshot(&self, lg: &Self::Graph, iter: u64) -> Vec<u8> {
        ckpt::encode_vc_snapshot(lg, iter)
    }
    fn encode_snapshot_inc(&self, lg: &Self::Graph, iter: u64, dirty: &[u32]) -> Vec<u8> {
        ckpt::encode_vc_snapshot_inc(lg, iter, dirty)
    }
    fn apply_snapshot(&self, lg: &mut Self::Graph, bytes: &[u8]) -> u64 {
        ckpt::apply_vc_snapshot(lg, bytes).expect("snapshot decodes")
    }
    fn apply_snapshot_inc(&self, lg: &mut Self::Graph, bytes: &[u8]) -> u64 {
        ckpt::apply_vc_snapshot_inc(lg, bytes).expect("snapshot decodes")
    }

    /// Resets values to the iteration-0 state (the dense engine has no
    /// activation state to reset).
    fn reset_to_initial(&self, lg: &mut Self::Graph, shared: &Shared<Self>) {
        for v in lg.verts.iter_mut() {
            v.value = self.prog.init(v.vid, &shared.degrees);
        }
    }

    fn apply_full_sync(&self, lg: &mut Self::Graph, incoming: Vec<VertexSync<Self::Value>>) {
        for s in incoming {
            lg.verts[s.pos as usize].value = s.value;
        }
    }

    /// The dense engine keeps no scatter bits; full-sync records carry
    /// `activate: false`.
    fn scatter_bit(&self, _lg: &Self::Graph, _pos: u32) -> bool {
        false
    }

    fn empty_graph(&self, me: NodeId) -> Self::Graph {
        VcLocalGraph::empty(me)
    }

    fn replica_entry(
        &self,
        lg: &Self::Graph,
        pos: u32,
        _dead_node: NodeId,
        rpos: u32,
        kind: CopyKind,
    ) -> Self::Entry {
        let v = &lg.verts[pos as usize];
        let meta = v
            .meta
            .as_ref()
            .unwrap_or_else(|| panic!("full-state copy of {} has no meta", v.vid));
        VcRecoverEntry {
            vid: v.vid,
            pos: rpos,
            kind,
            master_node: v.master_node,
            value: v.value.clone(),
            meta: (kind == CopyKind::Mirror).then(|| meta.clone()),
        }
    }

    fn master_entry(&self, lg: &Self::Graph, pos: u32) -> Self::Entry {
        let v = &lg.verts[pos as usize];
        let meta = v
            .meta
            .as_ref()
            .unwrap_or_else(|| panic!("mirror {} has no full state", v.vid));
        VcRecoverEntry {
            vid: v.vid,
            pos: meta.master_pos,
            kind: CopyKind::Master,
            master_node: v.master_node,
            value: v.value.clone(),
            meta: Some(meta.clone()),
        }
    }

    fn entry_wire_bytes(&self, e: &Self::Entry) -> u64 {
        VcRecoverEntry::<P::Value>::wire_bytes(self.prog.value_wire_bytes(&e.value)) as u64
    }
    /// Vertex-cut entries carry no edges — those come from edge-ckpt files.
    fn entry_edges(&self, _e: &Self::Entry) -> u64 {
        0
    }

    fn insert_entry(&self, lg: &mut Self::Graph, e: Self::Entry) {
        lg.insert_at(
            e.pos,
            VcVertex {
                vid: e.vid,
                kind: e.kind,
                master_node: e.master_node,
                value: e.value,
                meta: e.meta,
            },
        );
    }

    /// Rebirth reload also replays the crashed node's own edge-ckpt files:
    /// every edge it owned, keyed by receiver, read back in one pass.
    fn rebirth_reload_extra(&self, lg: &mut Self::Graph, shared: &Shared<Self>) {
        for path in shared.dfs.list(&format!("vc/eckpt/{}/", lg.node.raw())) {
            let bytes = shared
                .dfs
                .read(&path)
                .unwrap_or_else(|| panic!("listed edge-ckpt {path} readable"));
            for (src, dst, weight) in ckpt::decode_edge_ckpt(&bytes).expect("edge-ckpt decodes") {
                let spos = lg
                    .position(src)
                    .unwrap_or_else(|| panic!("edge endpoint {src} recovered"));
                let dpos = lg
                    .position(dst)
                    .unwrap_or_else(|| panic!("edge endpoint {dst} recovered"));
                lg.edges.push(VcEdge {
                    src: spos,
                    dst: dpos,
                    weight,
                });
            }
        }
    }

    fn validate(&self, lg: &Self::Graph) {
        lg.debug_validate();
    }

    fn graph_stats(&self, lg: &Self::Graph) -> (u64, u64) {
        (lg.verts.len() as u64, lg.edges.len() as u64)
    }

    /// R2: adopt the crashed nodes' edge-ckpt files addressed to this node
    /// (the leader additionally adopts dead→dead orphan files), then
    /// request replicas of any adopted-edge endpoint with no local copy.
    fn migration_requests(
        &self,
        lg: &mut Self::Graph,
        shared: &Shared<Self>,
        st: &St<Self>,
        mig: &mut Mig<VcMigExtra>,
        env: &MigEnv<'_>,
    ) -> HashMap<NodeId, Vec<Vid>> {
        let me = env.me;
        let mut adopted: Vec<(Vid, Vid, f32)> = Vec::new();
        for &d in env.dead {
            if let Some(bytes) = shared
                .dfs
                .read(&format!("vc/eckpt/{}/{}", d.raw(), me.raw()))
            {
                adopted.extend(ckpt::decode_edge_ckpt(&bytes).expect("edge-ckpt decodes"));
            }
        }
        if me == st.leader() {
            for &owner in env.dead {
                for &receiver in env.dead {
                    let path = format!("vc/eckpt/{}/{}", owner.raw(), receiver.raw());
                    if let Some(bytes) = shared.dfs.read(&path) {
                        adopted.extend(ckpt::decode_edge_ckpt(&bytes).expect("edge-ckpt decodes"));
                    }
                }
            }
        }
        let mut requests: HashMap<NodeId, Vec<Vid>> = HashMap::new();
        let mut requested: HashSet<Vid> = HashSet::new();
        for &(s, d, _) in &adopted {
            for vid in [s, d] {
                if lg.position(vid).is_none() && requested.insert(vid) {
                    let owner = st
                        .overlay
                        .get(&vid)
                        .copied()
                        .unwrap_or_else(|| NodeId::new(shared.owners[vid.index()]));
                    debug_assert!(st.alive[owner.index()], "endpoint {vid} has no live master");
                    debug_assert_ne!(owner, me);
                    requests.entry(owner).or_default().push(vid);
                }
            }
        }
        mig.extra.adopted = adopted;
        requests
    }

    fn place_granted(&self, lg: &mut Self::Graph, grant: ReplicaGrant<Self::Value>) -> u32 {
        lg.insert_or_position(VcVertex {
            vid: grant.vid,
            kind: CopyKind::Replica,
            master_node: grant.master_node,
            value: grant.value,
            meta: None,
        })
    }

    /// R4: wire the adopted edges — every endpoint is local now, either
    /// pre-existing or just granted.
    fn migration_wire(&self, lg: &mut Self::Graph, mig: &mut Mig<VcMigExtra>, _resume: u64) {
        for (s, d, w) in std::mem::take(&mut mig.extra.adopted) {
            let spos = lg
                .position(s)
                .unwrap_or_else(|| panic!("endpoint {s} granted or local"));
            let dpos = lg
                .position(d)
                .unwrap_or_else(|| panic!("endpoint {d} granted or local"));
            lg.edges.push(VcEdge {
                src: spos,
                dst: dpos,
                weight: w,
            });
            mig.edges_recovered += 1;
        }
    }

    fn place_fresh_mirror(
        &self,
        lg: &mut Self::Graph,
        update: MirrorUpdate<Self::Value, Self::Meta>,
    ) -> u32 {
        let value = update.value.expect("fresh FT replica carries its value");
        lg.insert_or_position(VcVertex {
            vid: update.vid,
            kind: CopyKind::Mirror,
            master_node: update.master_node,
            value,
            meta: Some(update.meta),
        })
    }

    fn meta_update_bytes(&self, _meta: &Self::Meta) -> u64 {
        // Payload estimate excluding the vertex ID, which ships as a varint
        // in the mirror frame's vid column (see `recovery::mirror_frame_bytes`).
        56
    }

    /// Migration changed which node persists which edges (adoption) and
    /// which node receives which file (promotions rewrote master
    /// locations) — rewrite the edge-ckpt files unconditionally so the next
    /// failure reloads a consistent set.
    fn migration_finish(&self, lg: &Self::Graph, shared: &Shared<Self>, _mig: &Mig<VcMigExtra>) {
        write_edge_ckpt_files(lg, &shared.dfs);
    }

    /// Checkpoint-fallback graft: splice the whole reconstructed partition
    /// into this survivor's graph, then remap and append every edge it
    /// owned (each edge is owned by exactly one node, so no duplicates).
    fn adopt_partition(
        &self,
        lg: &mut Self::Graph,
        dead_lg: Self::Graph,
        dead: NodeId,
        episode: &[NodeId],
        mig: &mut Mig<VcMigExtra>,
    ) -> Adoption {
        let me = lg.node;
        let base = lg.verts.len() as u32;
        let mut next = base;
        let map: Vec<u32> = dead_lg
            .verts
            .iter()
            .map(|dv| {
                lg.position(dv.vid).unwrap_or_else(|| {
                    let p = next;
                    next += 1;
                    p
                })
            })
            .collect();
        let mut out = Adoption::default();
        for (dp, mut dv) in dead_lg.verts.into_iter().enumerate() {
            let new_pos = map[dp];
            match dv.kind {
                CopyKind::Master => {
                    let mut meta = dv
                        .meta
                        .take()
                        .unwrap_or_else(|| panic!("adopted master {} has no full state", dv.vid));
                    meta.master_pos = new_pos;
                    meta.purge_node(me);
                    for &x in episode {
                        meta.purge_node(x);
                    }
                    if new_pos < base {
                        let v = &mut lg.verts[new_pos as usize];
                        debug_assert_eq!(
                            v.kind,
                            CopyKind::Replica,
                            "checkpoint FT keeps no mirrors"
                        );
                        v.kind = CopyKind::Master;
                        v.master_node = me;
                        v.value = dv.value;
                        v.meta = Some(meta);
                    } else {
                        lg.insert_at(
                            new_pos,
                            VcVertex {
                                vid: dv.vid,
                                kind: CopyKind::Master,
                                master_node: me,
                                value: dv.value,
                                meta: Some(meta),
                            },
                        );
                    }
                    out.promotions.push(Promotion {
                        vid: dv.vid,
                        new_master: me,
                        new_pos,
                        old_node: dead,
                        old_pos: dp as u32,
                    });
                    mig.recovered += 1;
                }
                CopyKind::Replica => {
                    if new_pos >= base {
                        let master_node = dv.master_node;
                        lg.insert_at(
                            new_pos,
                            VcVertex {
                                vid: dv.vid,
                                kind: CopyKind::Replica,
                                master_node,
                                value: dv.value,
                                meta: None,
                            },
                        );
                        if episode.contains(&master_node) {
                            out.orphans.push(new_pos);
                        } else {
                            out.placements.push((master_node, dv.vid, new_pos));
                        }
                        mig.recovered += 1;
                    }
                }
                CopyKind::Mirror => {
                    unreachable!("checkpoint FT keeps no mirrors")
                }
            }
        }
        for e in &dead_lg.edges {
            lg.edges.push(VcEdge {
                src: map[e.src as usize],
                dst: map[e.dst as usize],
                weight: e.weight,
            });
            mig.edges_recovered += 1;
        }
        out
    }
}

/// Splits this node's edges into one edge-ckpt file per receiving node: an
/// edge goes to the file of the node hosting the target's master (or its
/// first mirror when the master is this very node), so each survivor reloads
/// exactly one file in parallel during Migration (§4.3).
fn write_edge_ckpt_files<V>(lg: &VcLocalGraph<V>, dfs: &Dfs) {
    let me = lg.node;
    // Receivers shift between rewrites (promotions re-home masters), so a
    // stale per-receiver file from an earlier write — or from an aborted
    // recovery attempt — must not survive: replace the whole prefix.
    for path in dfs.list(&format!("vc/eckpt/{}/", me.raw())) {
        dfs.delete(&path);
    }
    let mut per_receiver: HashMap<NodeId, Vec<(Vid, Vid, f32)>> = HashMap::new();
    for e in &lg.edges {
        let src = lg.verts[e.src as usize].vid;
        let dst_v = &lg.verts[e.dst as usize];
        let receiver = if dst_v.master_node != me {
            dst_v.master_node
        } else {
            let meta = dst_v
                .meta
                .as_ref()
                .unwrap_or_else(|| panic!("local master {} has meta", dst_v.vid));
            meta.mirror_nodes
                .first()
                .copied()
                .unwrap_or(dst_v.master_node)
        };
        per_receiver
            .entry(receiver)
            .or_default()
            .push((src, dst_v.vid, e.weight));
    }
    for (receiver, edges) in per_receiver {
        dfs.write(
            &format!("vc/eckpt/{}/{}", me.raw(), receiver.raw()),
            ckpt::encode_edge_ckpt(&edges),
        );
    }
}

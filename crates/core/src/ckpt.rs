//! Snapshot encoding for checkpoint-based fault tolerance and edge-ckpt
//! files (§2.2, §4.3).
//!
//! Three kinds of DFS content:
//!
//! * **metadata snapshots** — one per node, written after loading: the
//!   immutable local graph topology (vertex copies, positions, edges, full
//!   state), from which a replacement node reconstructs the crashed node's
//!   layout;
//! * **data snapshots** — one per node per checkpoint: the masters' mutable
//!   state (value + activity), written inside the global barrier;
//! * **edge-ckpt files** — vertex-cut only: each node's owned edges, split
//!   into one file per potential receiver so Migration can reload them in
//!   parallel (§4.3).

use imitator_cluster::NodeId;
use imitator_engine::{
    CopyKind, EcLocalGraph, EcVertex, MasterMeta, VcEdge, VcLocalGraph, VcMeta, VcVertex,
};
use imitator_graph::{Vid, VidMap};
use imitator_storage::codec::{Decode, DecodeError, Encode, Reader};

fn enc_vid(v: Vid, buf: &mut Vec<u8>) {
    v.raw().encode(buf);
}

fn dec_vid(r: &mut Reader<'_>) -> Result<Vid, DecodeError> {
    Ok(Vid::new(u32::decode(r)?))
}

fn enc_node(n: NodeId, buf: &mut Vec<u8>) {
    n.raw().encode(buf);
}

fn dec_node(r: &mut Reader<'_>) -> Result<NodeId, DecodeError> {
    Ok(NodeId::new(u32::decode(r)?))
}

fn enc_kind(k: CopyKind, buf: &mut Vec<u8>) {
    let b: u8 = match k {
        CopyKind::Master => 0,
        CopyKind::Replica => 1,
        CopyKind::Mirror => 2,
    };
    b.encode(buf);
}

fn dec_kind(r: &mut Reader<'_>) -> Result<CopyKind, DecodeError> {
    match u8::decode(r)? {
        0 => Ok(CopyKind::Master),
        1 => Ok(CopyKind::Replica),
        2 => Ok(CopyKind::Mirror),
        _ => Err(DecodeError::Corrupt("copy kind")),
    }
}

fn enc_meta(m: &MasterMeta, buf: &mut Vec<u8>) {
    m.master_pos.encode(buf);
    (m.replica_nodes.len() as u32).encode(buf);
    for (&n, &p) in m.replica_nodes.iter().zip(&m.replica_positions) {
        enc_node(n, buf);
        p.encode(buf);
    }
    (m.mirror_nodes.len() as u32).encode(buf);
    for &n in &m.mirror_nodes {
        enc_node(n, buf);
    }
    (m.in_edges_owner.len() as u32).encode(buf);
    for (&(pos, w), &src) in m.in_edges_owner.iter().zip(&m.in_edge_srcs) {
        pos.encode(buf);
        w.encode(buf);
        enc_vid(src, buf);
    }
    m.out_local_owner.encode(buf);
    (m.out_remote.len() as u32).encode(buf);
    for r in &m.out_remote {
        enc_vid(r.target, buf);
        enc_node(r.node, buf);
        r.pos.encode(buf);
    }
}

fn dec_meta(r: &mut Reader<'_>) -> Result<MasterMeta, DecodeError> {
    let master_pos = u32::decode(r)?;
    let nr = u32::decode(r)? as usize;
    let mut replica_nodes = Vec::with_capacity(nr);
    let mut replica_positions = Vec::with_capacity(nr);
    for _ in 0..nr {
        replica_nodes.push(dec_node(r)?);
        replica_positions.push(u32::decode(r)?);
    }
    let nm = u32::decode(r)? as usize;
    let mut mirror_nodes = Vec::with_capacity(nm);
    for _ in 0..nm {
        mirror_nodes.push(dec_node(r)?);
    }
    let ne = u32::decode(r)? as usize;
    let mut in_edges_owner = Vec::with_capacity(ne);
    let mut in_edge_srcs = Vec::with_capacity(ne);
    for _ in 0..ne {
        let pos = u32::decode(r)?;
        let w = f32::decode(r)?;
        in_edges_owner.push((pos, w));
        in_edge_srcs.push(dec_vid(r)?);
    }
    let out_local_owner = Vec::<u32>::decode(r)?;
    let nor = u32::decode(r)? as usize;
    let mut out_remote = Vec::with_capacity(nor);
    for _ in 0..nor {
        out_remote.push(imitator_engine::RemoteEdge {
            target: dec_vid(r)?,
            node: dec_node(r)?,
            pos: u32::decode(r)?,
        });
    }
    Ok(MasterMeta {
        master_pos,
        replica_nodes,
        replica_positions,
        mirror_nodes,
        in_edges_owner,
        in_edge_srcs,
        out_local_owner,
        out_remote,
    })
}

/// Encodes an edge-cut local graph (topology + current state) as a
/// metadata snapshot.
pub fn encode_ec_graph<V: Encode>(lg: &EcLocalGraph<V>) -> Vec<u8> {
    let mut buf = Vec::new();
    lg.node.raw().encode(&mut buf);
    (lg.verts.len() as u32).encode(&mut buf);
    for v in &lg.verts {
        enc_vid(v.vid, &mut buf);
        enc_kind(v.kind, &mut buf);
        enc_node(v.master_node, &mut buf);
        v.value.encode(&mut buf);
        v.active.encode(&mut buf);
        v.last_activate.encode(&mut buf);
        (v.in_edges.len() as u32).encode(&mut buf);
        for &(s, w) in &v.in_edges {
            s.encode(&mut buf);
            w.encode(&mut buf);
        }
        v.out_local.encode(&mut buf);
        match &v.meta {
            None => 0u8.encode(&mut buf),
            Some(m) => {
                1u8.encode(&mut buf);
                enc_meta(m, &mut buf);
            }
        }
    }
    buf
}

/// Decodes an edge-cut metadata snapshot.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or corrupt input.
pub fn decode_ec_graph<V: Decode>(bytes: &[u8]) -> Result<EcLocalGraph<V>, DecodeError> {
    let mut r = Reader::new(bytes);
    let node = NodeId::new(u32::decode(&mut r)?);
    let n = u32::decode(&mut r)? as usize;
    let mut verts = Vec::with_capacity(n);
    let mut index = VidMap::with_capacity_and_hasher(n, Default::default());
    for pos in 0..n {
        let vid = dec_vid(&mut r)?;
        let kind = dec_kind(&mut r)?;
        let master_node = dec_node(&mut r)?;
        let value = V::decode(&mut r)?;
        let active = bool::decode(&mut r)?;
        let last_activate = bool::decode(&mut r)?;
        let ne = u32::decode(&mut r)? as usize;
        let mut in_edges = Vec::with_capacity(ne);
        for _ in 0..ne {
            let s = u32::decode(&mut r)?;
            let w = f32::decode(&mut r)?;
            in_edges.push((s, w));
        }
        let out_local = Vec::<u32>::decode(&mut r)?;
        let meta = match u8::decode(&mut r)? {
            0 => None,
            1 => Some(Box::new(dec_meta(&mut r)?)),
            _ => return Err(DecodeError::Corrupt("meta flag")),
        };
        index.insert(vid, pos as u32);
        verts.push(EcVertex {
            vid,
            kind,
            master_node,
            value,
            active,
            next_active: false,
            last_activate,
            in_edges,
            out_local,
            meta,
        });
    }
    if r.remaining() > 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    let mut lg = EcLocalGraph {
        node,
        verts,
        index,
        active_frontier: Vec::new(),
    };
    lg.rebuild_active_frontier();
    Ok(lg)
}

/// Encodes a data snapshot: the masters' mutable state.
pub fn encode_ec_snapshot<V: Encode>(lg: &EcLocalGraph<V>, iter: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    iter.encode(&mut buf);
    let masters: Vec<_> = lg
        .verts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_master())
        .collect();
    (masters.len() as u32).encode(&mut buf);
    for (pos, v) in masters {
        (pos as u32).encode(&mut buf);
        v.value.encode(&mut buf);
        v.active.encode(&mut buf);
        v.last_activate.encode(&mut buf);
    }
    buf
}

/// Applies a data snapshot, returning the iteration it was taken at.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or corrupt input.
pub fn apply_ec_snapshot<V: Decode>(
    lg: &mut EcLocalGraph<V>,
    bytes: &[u8],
) -> Result<u64, DecodeError> {
    let mut r = Reader::new(bytes);
    let iter = u64::decode(&mut r)?;
    let n = u32::decode(&mut r)? as usize;
    for _ in 0..n {
        let pos = u32::decode(&mut r)? as usize;
        let value = V::decode(&mut r)?;
        let active = bool::decode(&mut r)?;
        let last_activate = bool::decode(&mut r)?;
        if pos >= lg.verts.len() {
            return Err(DecodeError::Corrupt("snapshot position"));
        }
        let v = &mut lg.verts[pos];
        v.value = value;
        v.active = active;
        v.last_activate = last_activate;
        v.next_active = false;
    }
    lg.rebuild_active_frontier();
    Ok(iter)
}

fn enc_vc_meta(m: &VcMeta, buf: &mut Vec<u8>) {
    m.master_pos.encode(buf);
    (m.replica_nodes.len() as u32).encode(buf);
    for (&n, &p) in m.replica_nodes.iter().zip(&m.replica_positions) {
        enc_node(n, buf);
        p.encode(buf);
    }
    (m.mirror_nodes.len() as u32).encode(buf);
    for &n in &m.mirror_nodes {
        enc_node(n, buf);
    }
}

fn dec_vc_meta(r: &mut Reader<'_>) -> Result<VcMeta, DecodeError> {
    let master_pos = u32::decode(r)?;
    let nr = u32::decode(r)? as usize;
    let mut replica_nodes = Vec::with_capacity(nr);
    let mut replica_positions = Vec::with_capacity(nr);
    for _ in 0..nr {
        replica_nodes.push(dec_node(r)?);
        replica_positions.push(u32::decode(r)?);
    }
    let nm = u32::decode(r)? as usize;
    let mut mirror_nodes = Vec::with_capacity(nm);
    for _ in 0..nm {
        mirror_nodes.push(dec_node(r)?);
    }
    Ok(VcMeta {
        master_pos,
        replica_nodes,
        replica_positions,
        mirror_nodes,
    })
}

/// Encodes a vertex-cut local graph as a metadata snapshot.
pub fn encode_vc_graph<V: Encode>(lg: &VcLocalGraph<V>) -> Vec<u8> {
    let mut buf = Vec::new();
    lg.node.raw().encode(&mut buf);
    (lg.verts.len() as u32).encode(&mut buf);
    for v in &lg.verts {
        enc_vid(v.vid, &mut buf);
        enc_kind(v.kind, &mut buf);
        enc_node(v.master_node, &mut buf);
        v.value.encode(&mut buf);
        match &v.meta {
            None => 0u8.encode(&mut buf),
            Some(m) => {
                1u8.encode(&mut buf);
                enc_vc_meta(m, &mut buf);
            }
        }
    }
    (lg.edges.len() as u32).encode(&mut buf);
    for e in &lg.edges {
        e.src.encode(&mut buf);
        e.dst.encode(&mut buf);
        e.weight.encode(&mut buf);
    }
    buf
}

/// Decodes a vertex-cut metadata snapshot.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or corrupt input.
pub fn decode_vc_graph<V: Decode>(bytes: &[u8]) -> Result<VcLocalGraph<V>, DecodeError> {
    let mut r = Reader::new(bytes);
    let node = NodeId::new(u32::decode(&mut r)?);
    let n = u32::decode(&mut r)? as usize;
    let mut verts = Vec::with_capacity(n);
    let mut index = VidMap::with_capacity_and_hasher(n, Default::default());
    for pos in 0..n {
        let vid = dec_vid(&mut r)?;
        let kind = dec_kind(&mut r)?;
        let master_node = dec_node(&mut r)?;
        let value = V::decode(&mut r)?;
        let meta = match u8::decode(&mut r)? {
            0 => None,
            1 => Some(Box::new(dec_vc_meta(&mut r)?)),
            _ => return Err(DecodeError::Corrupt("meta flag")),
        };
        index.insert(vid, pos as u32);
        verts.push(VcVertex {
            vid,
            kind,
            master_node,
            value,
            meta,
        });
    }
    let ne = u32::decode(&mut r)? as usize;
    let mut edges = Vec::with_capacity(ne);
    for _ in 0..ne {
        edges.push(VcEdge {
            src: u32::decode(&mut r)?,
            dst: u32::decode(&mut r)?,
            weight: f32::decode(&mut r)?,
        });
    }
    if r.remaining() > 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    Ok(VcLocalGraph {
        node,
        verts,
        index,
        edges,
    })
}

/// Encodes a vertex-cut data snapshot: masters' values.
pub fn encode_vc_snapshot<V: Encode>(lg: &VcLocalGraph<V>, iter: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    iter.encode(&mut buf);
    let masters: Vec<_> = lg
        .verts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_master())
        .collect();
    (masters.len() as u32).encode(&mut buf);
    for (pos, v) in masters {
        (pos as u32).encode(&mut buf);
        v.value.encode(&mut buf);
    }
    buf
}

/// Applies a vertex-cut data snapshot, returning its iteration.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or corrupt input.
pub fn apply_vc_snapshot<V: Decode>(
    lg: &mut VcLocalGraph<V>,
    bytes: &[u8],
) -> Result<u64, DecodeError> {
    let mut r = Reader::new(bytes);
    let iter = u64::decode(&mut r)?;
    let n = u32::decode(&mut r)? as usize;
    for _ in 0..n {
        let pos = u32::decode(&mut r)? as usize;
        let value = V::decode(&mut r)?;
        if pos >= lg.verts.len() {
            return Err(DecodeError::Corrupt("snapshot position"));
        }
        lg.verts[pos].value = value;
    }
    Ok(iter)
}

/// Encodes an *incremental* edge-cut data snapshot (§2.3): only the dirty
/// masters' values, plus the full activation bitmap for every master (the
/// flags are cheap and may flip without a value change).
pub fn encode_ec_snapshot_inc<V: Encode>(
    lg: &EcLocalGraph<V>,
    iter: u64,
    dirty: &[u32],
) -> Vec<u8> {
    let mut buf = Vec::new();
    iter.encode(&mut buf);
    (dirty.len() as u32).encode(&mut buf);
    for &pos in dirty {
        pos.encode(&mut buf);
        lg.verts[pos as usize].value.encode(&mut buf);
    }
    let masters: Vec<_> = lg
        .verts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_master())
        .collect();
    (masters.len() as u32).encode(&mut buf);
    for (pos, v) in masters {
        (pos as u32).encode(&mut buf);
        let flags = u8::from(v.active) | (u8::from(v.last_activate) << 1);
        flags.encode(&mut buf);
    }
    buf
}

/// Applies one link of an incremental edge-cut snapshot chain, returning the
/// iteration it was taken at. Values accumulate across links; flags are full
/// per link, so the last applied link's flags win.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or corrupt input.
pub fn apply_ec_snapshot_inc<V: Decode>(
    lg: &mut EcLocalGraph<V>,
    bytes: &[u8],
) -> Result<u64, DecodeError> {
    let mut r = Reader::new(bytes);
    let iter = u64::decode(&mut r)?;
    let n = u32::decode(&mut r)? as usize;
    for _ in 0..n {
        let pos = u32::decode(&mut r)? as usize;
        let value = V::decode(&mut r)?;
        if pos >= lg.verts.len() {
            return Err(DecodeError::Corrupt("snapshot position"));
        }
        lg.verts[pos].value = value;
    }
    let m = u32::decode(&mut r)? as usize;
    for _ in 0..m {
        let pos = u32::decode(&mut r)? as usize;
        let flags = u8::decode(&mut r)?;
        if pos >= lg.verts.len() {
            return Err(DecodeError::Corrupt("snapshot position"));
        }
        let v = &mut lg.verts[pos];
        v.active = flags & 1 != 0;
        v.last_activate = flags & 2 != 0;
        v.next_active = false;
    }
    lg.rebuild_active_frontier();
    Ok(iter)
}

/// Encodes an *incremental* vertex-cut data snapshot: dirty masters' values
/// only (the dense engine carries no activation state).
pub fn encode_vc_snapshot_inc<V: Encode>(
    lg: &VcLocalGraph<V>,
    iter: u64,
    dirty: &[u32],
) -> Vec<u8> {
    let mut buf = Vec::new();
    iter.encode(&mut buf);
    (dirty.len() as u32).encode(&mut buf);
    for &pos in dirty {
        pos.encode(&mut buf);
        lg.verts[pos as usize].value.encode(&mut buf);
    }
    buf
}

/// Applies one link of an incremental vertex-cut snapshot chain.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or corrupt input.
pub fn apply_vc_snapshot_inc<V: Decode>(
    lg: &mut VcLocalGraph<V>,
    bytes: &[u8],
) -> Result<u64, DecodeError> {
    // Same layout as the full snapshot minus flags — delegate.
    apply_vc_snapshot(lg, bytes)
}

/// Encodes an edge-ckpt file: global `(src, dst, weight)` triples.
pub fn encode_edge_ckpt(edges: &[(Vid, Vid, f32)]) -> Vec<u8> {
    let mut buf = Vec::new();
    (edges.len() as u32).encode(&mut buf);
    for &(s, d, w) in edges {
        enc_vid(s, &mut buf);
        enc_vid(d, &mut buf);
        w.encode(&mut buf);
    }
    buf
}

/// Decodes an edge-ckpt file.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or corrupt input.
pub fn decode_edge_ckpt(bytes: &[u8]) -> Result<Vec<(Vid, Vid, f32)>, DecodeError> {
    let mut r = Reader::new(bytes);
    let n = u32::decode(&mut r)? as usize;
    let mut edges = Vec::with_capacity(n);
    for _ in 0..n {
        edges.push((dec_vid(&mut r)?, dec_vid(&mut r)?, f32::decode(&mut r)?));
    }
    if r.remaining() > 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    Ok(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imitator_engine::{build_edge_cut_graphs, build_vertex_cut_graphs, Degrees, FtPlan};
    use imitator_graph::gen;
    use imitator_partition::{
        EdgeCutPartitioner, HashEdgeCut, RandomVertexCut, VertexCutPartitioner,
    };

    struct P;
    impl imitator_engine::VertexProgram for P {
        type Value = f64;
        type Accum = f64;
        fn init(&self, vid: Vid, _d: &Degrees) -> f64 {
            f64::from(vid.raw())
        }
        fn gather(&self, _w: f32, s: &f64) -> f64 {
            *s
        }
        fn combine(&self, a: f64, b: f64) -> f64 {
            a + b
        }
        fn apply(&self, _v: Vid, old: &f64, acc: Option<f64>, _d: &Degrees) -> f64 {
            acc.unwrap_or(*old)
        }
        fn scatter(&self, _v: Vid, _o: &f64, _n: &f64) -> bool {
            true
        }
    }

    #[test]
    fn ec_graph_roundtrips() {
        let g = gen::power_law(300, 2.0, 5, 3);
        let cut = HashEdgeCut.partition(&g, 3);
        let plan = FtPlan::none(g.num_vertices());
        let d = Degrees::of(&g);
        let lgs = build_edge_cut_graphs(&g, &cut, &plan, &P, &d);
        for lg in &lgs {
            let bytes = encode_ec_graph(lg);
            let back: EcLocalGraph<f64> = decode_ec_graph(&bytes).unwrap();
            assert_eq!(&back, lg);
        }
    }

    #[test]
    fn ec_snapshot_roundtrips_masters_only() {
        let g = gen::power_law(200, 2.0, 5, 5);
        let cut = HashEdgeCut.partition(&g, 2);
        let plan = FtPlan::none(g.num_vertices());
        let d = Degrees::of(&g);
        let mut lgs = build_edge_cut_graphs(&g, &cut, &plan, &P, &d);
        // mutate masters, snapshot, wreck, restore
        for v in lgs[0].verts.iter_mut().filter(|v| v.is_master()) {
            v.value = 42.0;
        }
        let snap = encode_ec_snapshot(&lgs[0], 7);
        for v in lgs[0].verts.iter_mut() {
            v.value = -1.0;
        }
        let iter = apply_ec_snapshot(&mut lgs[0], &snap).unwrap();
        assert_eq!(iter, 7);
        for v in &lgs[0].verts {
            if v.is_master() {
                assert_eq!(v.value, 42.0);
            } else {
                assert_eq!(v.value, -1.0); // replicas untouched
            }
        }
    }

    #[test]
    fn vc_graph_roundtrips() {
        let g = gen::power_law(300, 2.0, 5, 9);
        let cut = RandomVertexCut.partition(&g, 4);
        let plan = FtPlan::none(g.num_vertices());
        let d = Degrees::of(&g);
        let lgs = build_vertex_cut_graphs(&g, &cut, &plan, &P, &d);
        for lg in &lgs {
            let bytes = encode_vc_graph(lg);
            let back: VcLocalGraph<f64> = decode_vc_graph(&bytes).unwrap();
            assert_eq!(&back, lg);
        }
    }

    #[test]
    fn vc_snapshot_roundtrips() {
        let g = gen::power_law(150, 2.0, 4, 11);
        let cut = RandomVertexCut.partition(&g, 3);
        let plan = FtPlan::none(g.num_vertices());
        let d = Degrees::of(&g);
        let mut lgs = build_vertex_cut_graphs(&g, &cut, &plan, &P, &d);
        let snap = encode_vc_snapshot(&lgs[1], 3);
        for v in lgs[1].verts.iter_mut() {
            v.value = -5.0;
        }
        assert_eq!(apply_vc_snapshot(&mut lgs[1], &snap).unwrap(), 3);
        for v in lgs[1].verts.iter().filter(|v| v.is_master()) {
            assert_eq!(v.value, f64::from(v.vid.raw()));
        }
    }

    #[test]
    fn ec_sparse_incremental_snapshot_is_smaller_and_roundtrips() {
        let g = gen::power_law(200, 2.0, 5, 5);
        let cut = HashEdgeCut.partition(&g, 2);
        let plan = FtPlan::none(g.num_vertices());
        let d = Degrees::of(&g);
        let mut lgs = build_edge_cut_graphs(&g, &cut, &plan, &P, &d);
        let full = encode_ec_snapshot(&lgs[0], 3);
        // Sparse update: only three masters moved since the last epoch.
        let dirty: Vec<u32> = lgs[0]
            .verts
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_master())
            .map(|(pos, _)| pos as u32)
            .take(3)
            .collect();
        assert_eq!(dirty.len(), 3);
        for &pos in &dirty {
            lgs[0].verts[pos as usize].value = 42.0;
        }
        let inc = encode_ec_snapshot_inc(&lgs[0], 4, &dirty);
        assert!(
            inc.len() < full.len(),
            "sparse delta ({} B) must undercut the full snapshot ({} B)",
            inc.len(),
            full.len()
        );
        // Chain full + delta onto a wrecked graph: dirty values come from the
        // delta, the rest from the base.
        let mut target = build_edge_cut_graphs(&g, &cut, &plan, &P, &d).remove(0);
        for v in target.verts.iter_mut() {
            v.value = -1.0;
        }
        assert_eq!(apply_ec_snapshot(&mut target, &full).unwrap(), 3);
        assert_eq!(apply_ec_snapshot_inc(&mut target, &inc).unwrap(), 4);
        for (v, want) in target.verts.iter().zip(&lgs[0].verts) {
            if v.is_master() {
                assert_eq!(
                    (v.value, v.active, v.last_activate),
                    (want.value, want.active, want.last_activate)
                );
            } else {
                assert_eq!(v.value, -1.0); // replicas untouched by data snapshots
            }
        }
    }

    #[test]
    fn vc_sparse_incremental_snapshot_is_smaller_and_roundtrips() {
        let g = gen::power_law(200, 2.0, 5, 7);
        let cut = RandomVertexCut.partition(&g, 3);
        let plan = FtPlan::none(g.num_vertices());
        let d = Degrees::of(&g);
        let mut lgs = build_vertex_cut_graphs(&g, &cut, &plan, &P, &d);
        let full = encode_vc_snapshot(&lgs[1], 3);
        let dirty: Vec<u32> = lgs[1]
            .verts
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_master())
            .map(|(pos, _)| pos as u32)
            .take(2)
            .collect();
        assert_eq!(dirty.len(), 2);
        for &pos in &dirty {
            lgs[1].verts[pos as usize].value = 9.0;
        }
        let inc = encode_vc_snapshot_inc(&lgs[1], 4, &dirty);
        assert!(
            inc.len() < full.len(),
            "sparse delta ({} B) must undercut the full snapshot ({} B)",
            inc.len(),
            full.len()
        );
        let mut target = build_vertex_cut_graphs(&g, &cut, &plan, &P, &d).remove(1);
        for v in target.verts.iter_mut() {
            v.value = -5.0;
        }
        assert_eq!(apply_vc_snapshot(&mut target, &full).unwrap(), 3);
        assert_eq!(apply_vc_snapshot_inc(&mut target, &inc).unwrap(), 4);
        for (v, want) in target.verts.iter().zip(&lgs[1].verts) {
            if v.is_master() {
                assert_eq!(v.value, want.value);
            }
        }
    }

    #[test]
    fn edge_ckpt_roundtrips() {
        let edges = vec![
            (Vid::new(0), Vid::new(1), 1.5),
            (Vid::new(7), Vid::new(3), -2.0),
        ];
        let bytes = encode_edge_ckpt(&edges);
        assert_eq!(decode_edge_ckpt(&bytes).unwrap(), edges);
    }

    #[test]
    fn corrupt_snapshot_is_rejected() {
        let bytes = encode_edge_ckpt(&[(Vid::new(0), Vid::new(1), 1.0)]);
        assert!(decode_edge_ckpt(&bytes[..bytes.len() - 1]).is_err());
        let mut graph_bytes = vec![0u8; 3];
        graph_bytes.extend_from_slice(&bytes);
        assert!(decode_ec_graph::<f64>(&graph_bytes).is_err());
    }
}

//! Snapshot encoding for checkpoint-based fault tolerance and edge-ckpt
//! files (§2.2, §4.3).
//!
//! Three kinds of DFS content:
//!
//! * **metadata snapshots** — one per node, written after loading: the
//!   immutable local graph topology (vertex copies, positions, edges, full
//!   state), from which a replacement node reconstructs the crashed node's
//!   layout;
//! * **data snapshots** — one per node per checkpoint: the masters' mutable
//!   state (value + activity), written inside the global barrier;
//! * **edge-ckpt files** — vertex-cut only: each node's owned edges, split
//!   into one file per potential receiver so Migration can reload them in
//!   parallel (§4.3).
//!
//! Integers that scale with the graph — vertex IDs, node IDs, array
//! positions, counts — are LEB128 varints, and the position columns of data
//! snapshots are zigzag varints of the step from the previous position
//! (ascending master scans make most steps one byte). Per-master activation
//! flags pack two bits apiece into a bitmap. Values keep their codec
//! encoding unchanged. Checkpoint payloads shrink several-fold; decoding
//! stays strict (trailing bytes and out-of-range positions are errors).

use imitator_cluster::NodeId;
use imitator_engine::{
    CopyKind, EcLocalGraph, EcVertex, MasterMeta, VcEdge, VcLocalGraph, VcMeta, VcVertex,
};
use imitator_graph::{PosIndex, Vid};
use imitator_storage::codec::{
    read_uvarint, unzigzag64, write_uvarint, zigzag64, Decode, DecodeError, Encode, Reader,
};

fn enc_uv(v: u64, buf: &mut Vec<u8>) {
    write_uvarint(buf, v);
}

fn dec_uv(r: &mut Reader<'_>) -> Result<u64, DecodeError> {
    read_uvarint(r)
}

fn dec_count(r: &mut Reader<'_>) -> Result<usize, DecodeError> {
    let n = read_uvarint(r)?;
    // Every counted record costs at least one byte; a count beyond the
    // remaining input is corruption, caught before any allocation.
    if n > r.remaining() as u64 {
        return Err(DecodeError::Corrupt("count exceeds input"));
    }
    Ok(n as usize)
}

fn enc_u32(v: u32, buf: &mut Vec<u8>) {
    write_uvarint(buf, u64::from(v));
}

fn dec_u32(r: &mut Reader<'_>) -> Result<u32, DecodeError> {
    u32::try_from(read_uvarint(r)?).map_err(|_| DecodeError::Corrupt("varint exceeds u32"))
}

/// Writes `cur` as the zigzag varint of its step from `prev`, advancing
/// `prev` — the shared position/ID column primitive.
fn enc_delta(cur: u32, prev: &mut u32, buf: &mut Vec<u8>) {
    write_uvarint(buf, zigzag64(i64::from(cur) - i64::from(*prev)));
    *prev = cur;
}

fn dec_delta(r: &mut Reader<'_>, prev: &mut u32) -> Result<u32, DecodeError> {
    let cur = i64::from(*prev) + unzigzag64(read_uvarint(r)?);
    let cur = u32::try_from(cur).map_err(|_| DecodeError::Corrupt("delta column"))?;
    *prev = cur;
    Ok(cur)
}

fn enc_vid(v: Vid, buf: &mut Vec<u8>) {
    enc_u32(v.raw(), buf);
}

fn dec_vid(r: &mut Reader<'_>) -> Result<Vid, DecodeError> {
    Ok(Vid::new(dec_u32(r)?))
}

fn enc_node(n: NodeId, buf: &mut Vec<u8>) {
    enc_u32(n.raw(), buf);
}

fn dec_node(r: &mut Reader<'_>) -> Result<NodeId, DecodeError> {
    Ok(NodeId::new(dec_u32(r)?))
}

pub(crate) fn kind_bits(k: CopyKind) -> u8 {
    match k {
        CopyKind::Master => 0,
        CopyKind::Replica => 1,
        CopyKind::Mirror => 2,
    }
}

pub(crate) fn kind_from_bits(b: u8) -> Result<CopyKind, DecodeError> {
    match b {
        0 => Ok(CopyKind::Master),
        1 => Ok(CopyKind::Replica),
        2 => Ok(CopyKind::Mirror),
        _ => Err(DecodeError::Corrupt("copy kind")),
    }
}

pub(crate) fn enc_meta(m: &MasterMeta, buf: &mut Vec<u8>) {
    enc_u32(m.master_pos, buf);
    enc_uv(m.replica_nodes.len() as u64, buf);
    for (&n, &p) in m.replica_nodes.iter().zip(&m.replica_positions) {
        enc_node(n, buf);
        enc_u32(p, buf);
    }
    enc_uv(m.mirror_nodes.len() as u64, buf);
    for &n in &m.mirror_nodes {
        enc_node(n, buf);
    }
    enc_uv(m.in_edges_owner.len() as u64, buf);
    for (&(pos, w), &src) in m.in_edges_owner.iter().zip(&m.in_edge_srcs) {
        enc_u32(pos, buf);
        w.encode(buf);
        enc_vid(src, buf);
    }
    enc_uv(m.out_local_owner.len() as u64, buf);
    for &p in &m.out_local_owner {
        enc_u32(p, buf);
    }
    enc_uv(m.out_remote.len() as u64, buf);
    for r in &m.out_remote {
        enc_vid(r.target, buf);
        enc_node(r.node, buf);
        enc_u32(r.pos, buf);
    }
}

pub(crate) fn dec_meta(r: &mut Reader<'_>) -> Result<MasterMeta, DecodeError> {
    let master_pos = dec_u32(r)?;
    let nr = dec_count(r)?;
    let mut replica_nodes = Vec::with_capacity(nr);
    let mut replica_positions = Vec::with_capacity(nr);
    for _ in 0..nr {
        replica_nodes.push(dec_node(r)?);
        replica_positions.push(dec_u32(r)?);
    }
    let nm = dec_count(r)?;
    let mut mirror_nodes = Vec::with_capacity(nm);
    for _ in 0..nm {
        mirror_nodes.push(dec_node(r)?);
    }
    let ne = dec_count(r)?;
    let mut in_edges_owner = Vec::with_capacity(ne);
    let mut in_edge_srcs = Vec::with_capacity(ne);
    for _ in 0..ne {
        let pos = dec_u32(r)?;
        let w = f32::decode(r)?;
        in_edges_owner.push((pos, w));
        in_edge_srcs.push(dec_vid(r)?);
    }
    let nl = dec_count(r)?;
    let mut out_local_owner = Vec::with_capacity(nl);
    for _ in 0..nl {
        out_local_owner.push(dec_u32(r)?);
    }
    let nor = dec_count(r)?;
    let mut out_remote = Vec::with_capacity(nor);
    for _ in 0..nor {
        out_remote.push(imitator_engine::RemoteEdge {
            target: dec_vid(r)?,
            node: dec_node(r)?,
            pos: dec_u32(r)?,
        });
    }
    Ok(MasterMeta {
        master_pos,
        replica_nodes,
        replica_positions,
        mirror_nodes,
        in_edges_owner,
        in_edge_srcs,
        out_local_owner,
        out_remote,
    })
}

/// Encodes an edge-cut local graph (topology + current state) as a
/// metadata snapshot.
pub fn encode_ec_graph<V: Encode>(lg: &EcLocalGraph<V>) -> Vec<u8> {
    let mut buf = Vec::new();
    enc_u32(lg.node.raw(), &mut buf);
    enc_uv(lg.verts.len() as u64, &mut buf);
    let mut prev_vid = 0u32;
    for v in &lg.verts {
        enc_delta(v.vid.raw(), &mut prev_vid, &mut buf);
        // kind (2b) | active | last_activate | has-meta in one byte.
        let flags = kind_bits(v.kind)
            | (u8::from(v.active) << 2)
            | (u8::from(v.last_activate) << 3)
            | (u8::from(v.meta.is_some()) << 4);
        buf.push(flags);
        enc_node(v.master_node, &mut buf);
        v.value.encode(&mut buf);
        enc_uv(v.in_edges.len() as u64, &mut buf);
        for &(s, w) in &v.in_edges {
            enc_u32(s, &mut buf);
            w.encode(&mut buf);
        }
        enc_uv(v.out_local.len() as u64, &mut buf);
        for &t in &v.out_local {
            enc_u32(t, &mut buf);
        }
        if let Some(m) = &v.meta {
            enc_meta(m, &mut buf);
        }
    }
    buf
}

/// Decodes an edge-cut metadata snapshot.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or corrupt input.
pub fn decode_ec_graph<V: Decode>(bytes: &[u8]) -> Result<EcLocalGraph<V>, DecodeError> {
    let mut r = Reader::new(bytes);
    let node = NodeId::new(dec_u32(&mut r)?);
    let n = dec_count(&mut r)?;
    let mut verts = Vec::with_capacity(n);
    let mut pairs = Vec::with_capacity(n);
    let mut prev_vid = 0u32;
    for pos in 0..n {
        let vid = Vid::new(dec_delta(&mut r, &mut prev_vid)?);
        let flags = r.take(1)?[0];
        if flags & !0b1_1111 != 0 {
            return Err(DecodeError::Corrupt("vertex flags"));
        }
        let kind = kind_from_bits(flags & 0b11)?;
        let master_node = dec_node(&mut r)?;
        let value = V::decode(&mut r)?;
        let ne = dec_count(&mut r)?;
        let mut in_edges = Vec::with_capacity(ne);
        for _ in 0..ne {
            let s = dec_u32(&mut r)?;
            let w = f32::decode(&mut r)?;
            in_edges.push((s, w));
        }
        let nl = dec_count(&mut r)?;
        let mut out_local = Vec::with_capacity(nl);
        for _ in 0..nl {
            out_local.push(dec_u32(&mut r)?);
        }
        let meta = if flags & 0b1_0000 != 0 {
            Some(Box::new(dec_meta(&mut r)?))
        } else {
            None
        };
        pairs.push((vid, pos as u32));
        verts.push(EcVertex {
            vid,
            kind,
            master_node,
            value,
            active: flags & 0b100 != 0,
            next_active: false,
            last_activate: flags & 0b1000 != 0,
            in_edges,
            out_local,
            meta,
        });
    }
    if r.remaining() > 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    let mut lg = EcLocalGraph {
        node,
        verts,
        index: PosIndex::from_pairs(pairs),
        active_frontier: Vec::new(),
    };
    lg.rebuild_active_frontier();
    Ok(lg)
}

/// Appends the shared data-snapshot prologue — positions as an ascending
/// delta column — returning the positions for the caller's value pass.
fn enc_pos_column(positions: &[u32], buf: &mut Vec<u8>) {
    let mut prev = 0u32;
    for &pos in positions {
        enc_delta(pos, &mut prev, buf);
    }
}

fn dec_pos_column(r: &mut Reader<'_>, n: usize) -> Result<Vec<u32>, DecodeError> {
    let mut prev = 0u32;
    let mut positions = Vec::with_capacity(n);
    for _ in 0..n {
        positions.push(dec_delta(r, &mut prev)?);
    }
    Ok(positions)
}

/// Encodes a data snapshot: the masters' mutable state — iteration, master
/// position column, packed `active|last_activate` bitmap, then the values.
pub fn encode_ec_snapshot<V: Encode>(lg: &EcLocalGraph<V>, iter: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    enc_uv(iter, &mut buf);
    let masters: Vec<_> = lg
        .verts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_master())
        .collect();
    enc_uv(masters.len() as u64, &mut buf);
    let positions: Vec<u32> = masters.iter().map(|&(pos, _)| pos as u32).collect();
    enc_pos_column(&positions, &mut buf);
    let bitmap_at = buf.len();
    buf.resize(bitmap_at + (2 * masters.len()).div_ceil(8), 0);
    for (i, (_, v)) in masters.iter().enumerate() {
        let f = u8::from(v.active) | (u8::from(v.last_activate) << 1);
        buf[bitmap_at + i / 4] |= f << (2 * (i % 4));
    }
    for (_, v) in masters {
        v.value.encode(&mut buf);
    }
    buf
}

/// Applies a data snapshot, returning the iteration it was taken at.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or corrupt input.
pub fn apply_ec_snapshot<V: Decode>(
    lg: &mut EcLocalGraph<V>,
    bytes: &[u8],
) -> Result<u64, DecodeError> {
    let mut r = Reader::new(bytes);
    let iter = dec_uv(&mut r)?;
    let n = dec_count(&mut r)?;
    let positions = dec_pos_column(&mut r, n)?;
    let bitmap = r.take((2 * n).div_ceil(8))?.to_vec();
    for (i, &pos) in positions.iter().enumerate() {
        let pos = pos as usize;
        let value = V::decode(&mut r)?;
        if pos >= lg.verts.len() {
            return Err(DecodeError::Corrupt("snapshot position"));
        }
        let flags = (bitmap[i / 4] >> (2 * (i % 4))) & 0b11;
        let v = &mut lg.verts[pos];
        v.value = value;
        v.active = flags & 1 != 0;
        v.last_activate = flags & 2 != 0;
        v.next_active = false;
    }
    lg.rebuild_active_frontier();
    Ok(iter)
}

pub(crate) fn enc_vc_meta(m: &VcMeta, buf: &mut Vec<u8>) {
    enc_u32(m.master_pos, buf);
    enc_uv(m.replica_nodes.len() as u64, buf);
    for (&n, &p) in m.replica_nodes.iter().zip(&m.replica_positions) {
        enc_node(n, buf);
        enc_u32(p, buf);
    }
    enc_uv(m.mirror_nodes.len() as u64, buf);
    for &n in &m.mirror_nodes {
        enc_node(n, buf);
    }
}

pub(crate) fn dec_vc_meta(r: &mut Reader<'_>) -> Result<VcMeta, DecodeError> {
    let master_pos = dec_u32(r)?;
    let nr = dec_count(r)?;
    let mut replica_nodes = Vec::with_capacity(nr);
    let mut replica_positions = Vec::with_capacity(nr);
    for _ in 0..nr {
        replica_nodes.push(dec_node(r)?);
        replica_positions.push(dec_u32(r)?);
    }
    let nm = dec_count(r)?;
    let mut mirror_nodes = Vec::with_capacity(nm);
    for _ in 0..nm {
        mirror_nodes.push(dec_node(r)?);
    }
    Ok(VcMeta {
        master_pos,
        replica_nodes,
        replica_positions,
        mirror_nodes,
    })
}

/// Encodes a vertex-cut local graph as a metadata snapshot.
pub fn encode_vc_graph<V: Encode>(lg: &VcLocalGraph<V>) -> Vec<u8> {
    let mut buf = Vec::new();
    enc_u32(lg.node.raw(), &mut buf);
    enc_uv(lg.verts.len() as u64, &mut buf);
    let mut prev_vid = 0u32;
    for v in &lg.verts {
        enc_delta(v.vid.raw(), &mut prev_vid, &mut buf);
        let flags = kind_bits(v.kind) | (u8::from(v.meta.is_some()) << 2);
        buf.push(flags);
        enc_node(v.master_node, &mut buf);
        v.value.encode(&mut buf);
        if let Some(m) = &v.meta {
            enc_vc_meta(m, &mut buf);
        }
    }
    enc_uv(lg.edges.len() as u64, &mut buf);
    let (mut prev_src, mut prev_dst) = (0u32, 0u32);
    for e in &lg.edges {
        enc_delta(e.src, &mut prev_src, &mut buf);
        enc_delta(e.dst, &mut prev_dst, &mut buf);
        e.weight.encode(&mut buf);
    }
    buf
}

/// Decodes a vertex-cut metadata snapshot.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or corrupt input.
pub fn decode_vc_graph<V: Decode>(bytes: &[u8]) -> Result<VcLocalGraph<V>, DecodeError> {
    let mut r = Reader::new(bytes);
    let node = NodeId::new(dec_u32(&mut r)?);
    let n = dec_count(&mut r)?;
    let mut verts = Vec::with_capacity(n);
    let mut pairs = Vec::with_capacity(n);
    let mut prev_vid = 0u32;
    for pos in 0..n {
        let vid = Vid::new(dec_delta(&mut r, &mut prev_vid)?);
        let flags = r.take(1)?[0];
        if flags & !0b111 != 0 {
            return Err(DecodeError::Corrupt("vertex flags"));
        }
        let kind = kind_from_bits(flags & 0b11)?;
        let master_node = dec_node(&mut r)?;
        let value = V::decode(&mut r)?;
        let meta = if flags & 0b100 != 0 {
            Some(Box::new(dec_vc_meta(&mut r)?))
        } else {
            None
        };
        pairs.push((vid, pos as u32));
        verts.push(VcVertex {
            vid,
            kind,
            master_node,
            value,
            meta,
        });
    }
    let ne = dec_count(&mut r)?;
    let mut edges = Vec::with_capacity(ne);
    let (mut prev_src, mut prev_dst) = (0u32, 0u32);
    for _ in 0..ne {
        edges.push(VcEdge {
            src: dec_delta(&mut r, &mut prev_src)?,
            dst: dec_delta(&mut r, &mut prev_dst)?,
            weight: f32::decode(&mut r)?,
        });
    }
    if r.remaining() > 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    Ok(VcLocalGraph {
        node,
        verts,
        index: PosIndex::from_pairs(pairs),
        edges,
    })
}

/// Encodes a vertex-cut data snapshot: masters' values behind an ascending
/// position delta column.
pub fn encode_vc_snapshot<V: Encode>(lg: &VcLocalGraph<V>, iter: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    enc_uv(iter, &mut buf);
    let masters: Vec<_> = lg
        .verts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_master())
        .collect();
    enc_uv(masters.len() as u64, &mut buf);
    let positions: Vec<u32> = masters.iter().map(|&(pos, _)| pos as u32).collect();
    enc_pos_column(&positions, &mut buf);
    for (_, v) in masters {
        v.value.encode(&mut buf);
    }
    buf
}

/// Applies a vertex-cut data snapshot, returning its iteration.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or corrupt input.
pub fn apply_vc_snapshot<V: Decode>(
    lg: &mut VcLocalGraph<V>,
    bytes: &[u8],
) -> Result<u64, DecodeError> {
    let mut r = Reader::new(bytes);
    let iter = dec_uv(&mut r)?;
    let n = dec_count(&mut r)?;
    let positions = dec_pos_column(&mut r, n)?;
    for &pos in &positions {
        let value = V::decode(&mut r)?;
        if pos as usize >= lg.verts.len() {
            return Err(DecodeError::Corrupt("snapshot position"));
        }
        lg.verts[pos as usize].value = value;
    }
    Ok(iter)
}

/// Encodes an *incremental* edge-cut data snapshot (§2.3): only the dirty
/// masters' values, plus the full activation bitmap for every master (the
/// flags are cheap and may flip without a value change).
pub fn encode_ec_snapshot_inc<V: Encode>(
    lg: &EcLocalGraph<V>,
    iter: u64,
    dirty: &[u32],
) -> Vec<u8> {
    let mut buf = Vec::new();
    enc_uv(iter, &mut buf);
    enc_uv(dirty.len() as u64, &mut buf);
    enc_pos_column(dirty, &mut buf);
    for &pos in dirty {
        lg.verts[pos as usize].value.encode(&mut buf);
    }
    let masters: Vec<_> = lg
        .verts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_master())
        .collect();
    enc_uv(masters.len() as u64, &mut buf);
    let positions: Vec<u32> = masters.iter().map(|&(pos, _)| pos as u32).collect();
    enc_pos_column(&positions, &mut buf);
    let bitmap_at = buf.len();
    buf.resize(bitmap_at + (2 * masters.len()).div_ceil(8), 0);
    for (i, (_, v)) in masters.iter().enumerate() {
        let f = u8::from(v.active) | (u8::from(v.last_activate) << 1);
        buf[bitmap_at + i / 4] |= f << (2 * (i % 4));
    }
    buf
}

/// Applies one link of an incremental edge-cut snapshot chain, returning the
/// iteration it was taken at. Values accumulate across links; flags are full
/// per link, so the last applied link's flags win.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or corrupt input.
pub fn apply_ec_snapshot_inc<V: Decode>(
    lg: &mut EcLocalGraph<V>,
    bytes: &[u8],
) -> Result<u64, DecodeError> {
    let mut r = Reader::new(bytes);
    let iter = dec_uv(&mut r)?;
    let n = dec_count(&mut r)?;
    let positions = dec_pos_column(&mut r, n)?;
    for &pos in &positions {
        let value = V::decode(&mut r)?;
        if pos as usize >= lg.verts.len() {
            return Err(DecodeError::Corrupt("snapshot position"));
        }
        lg.verts[pos as usize].value = value;
    }
    let m = dec_count(&mut r)?;
    let positions = dec_pos_column(&mut r, m)?;
    let bitmap = r.take((2 * m).div_ceil(8))?.to_vec();
    for (i, &pos) in positions.iter().enumerate() {
        if pos as usize >= lg.verts.len() {
            return Err(DecodeError::Corrupt("snapshot position"));
        }
        let flags = (bitmap[i / 4] >> (2 * (i % 4))) & 0b11;
        let v = &mut lg.verts[pos as usize];
        v.active = flags & 1 != 0;
        v.last_activate = flags & 2 != 0;
        v.next_active = false;
    }
    lg.rebuild_active_frontier();
    Ok(iter)
}

/// Encodes an *incremental* vertex-cut data snapshot: dirty masters' values
/// only (the dense engine carries no activation state).
pub fn encode_vc_snapshot_inc<V: Encode>(
    lg: &VcLocalGraph<V>,
    iter: u64,
    dirty: &[u32],
) -> Vec<u8> {
    let mut buf = Vec::new();
    enc_uv(iter, &mut buf);
    enc_uv(dirty.len() as u64, &mut buf);
    enc_pos_column(dirty, &mut buf);
    for &pos in dirty {
        lg.verts[pos as usize].value.encode(&mut buf);
    }
    buf
}

/// Applies one link of an incremental vertex-cut snapshot chain.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or corrupt input.
pub fn apply_vc_snapshot_inc<V: Decode>(
    lg: &mut VcLocalGraph<V>,
    bytes: &[u8],
) -> Result<u64, DecodeError> {
    // Same layout as the full snapshot minus flags — delegate.
    apply_vc_snapshot(lg, bytes)
}

/// Encodes an edge-ckpt file: global `(src, dst, weight)` triples, IDs as
/// two zigzag delta columns interleaved per record (consecutive edges in a
/// partition share sources, so most steps are one byte).
pub fn encode_edge_ckpt(edges: &[(Vid, Vid, f32)]) -> Vec<u8> {
    let mut buf = Vec::new();
    enc_uv(edges.len() as u64, &mut buf);
    let (mut prev_src, mut prev_dst) = (0u32, 0u32);
    for &(s, d, w) in edges {
        enc_delta(s.raw(), &mut prev_src, &mut buf);
        enc_delta(d.raw(), &mut prev_dst, &mut buf);
        w.encode(&mut buf);
    }
    buf
}

/// Decodes an edge-ckpt file.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated or corrupt input.
pub fn decode_edge_ckpt(bytes: &[u8]) -> Result<Vec<(Vid, Vid, f32)>, DecodeError> {
    let mut r = Reader::new(bytes);
    let n = dec_count(&mut r)?;
    let mut edges = Vec::with_capacity(n);
    let (mut prev_src, mut prev_dst) = (0u32, 0u32);
    for _ in 0..n {
        let s = Vid::new(dec_delta(&mut r, &mut prev_src)?);
        let d = Vid::new(dec_delta(&mut r, &mut prev_dst)?);
        edges.push((s, d, f32::decode(&mut r)?));
    }
    if r.remaining() > 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    Ok(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imitator_engine::{build_edge_cut_graphs, build_vertex_cut_graphs, Degrees, FtPlan};
    use imitator_graph::gen;
    use imitator_partition::{
        EdgeCutPartitioner, HashEdgeCut, RandomVertexCut, VertexCutPartitioner,
    };

    struct P;
    impl imitator_engine::VertexProgram for P {
        type Value = f64;
        type Accum = f64;
        fn init(&self, vid: Vid, _d: &Degrees) -> f64 {
            f64::from(vid.raw())
        }
        fn gather(&self, _w: f32, s: &f64) -> f64 {
            *s
        }
        fn combine(&self, a: f64, b: f64) -> f64 {
            a + b
        }
        fn apply(&self, _v: Vid, old: &f64, acc: Option<f64>, _d: &Degrees) -> f64 {
            acc.unwrap_or(*old)
        }
        fn scatter(&self, _v: Vid, _o: &f64, _n: &f64) -> bool {
            true
        }
    }

    #[test]
    fn ec_graph_roundtrips() {
        let g = gen::power_law(300, 2.0, 5, 3);
        let cut = HashEdgeCut.partition(&g, 3);
        let plan = FtPlan::none(g.num_vertices());
        let d = Degrees::of(&g);
        let lgs = build_edge_cut_graphs(&g, &cut, &plan, &P, &d);
        for lg in &lgs {
            let bytes = encode_ec_graph(lg);
            let back: EcLocalGraph<f64> = decode_ec_graph(&bytes).unwrap();
            assert_eq!(&back, lg);
        }
    }

    #[test]
    fn ec_snapshot_roundtrips_masters_only() {
        let g = gen::power_law(200, 2.0, 5, 5);
        let cut = HashEdgeCut.partition(&g, 2);
        let plan = FtPlan::none(g.num_vertices());
        let d = Degrees::of(&g);
        let mut lgs = build_edge_cut_graphs(&g, &cut, &plan, &P, &d);
        // mutate masters, snapshot, wreck, restore
        for v in lgs[0].verts.iter_mut().filter(|v| v.is_master()) {
            v.value = 42.0;
        }
        let snap = encode_ec_snapshot(&lgs[0], 7);
        for v in lgs[0].verts.iter_mut() {
            v.value = -1.0;
        }
        let iter = apply_ec_snapshot(&mut lgs[0], &snap).unwrap();
        assert_eq!(iter, 7);
        for v in &lgs[0].verts {
            if v.is_master() {
                assert_eq!(v.value, 42.0);
            } else {
                assert_eq!(v.value, -1.0); // replicas untouched
            }
        }
    }

    #[test]
    fn vc_graph_roundtrips() {
        let g = gen::power_law(300, 2.0, 5, 9);
        let cut = RandomVertexCut.partition(&g, 4);
        let plan = FtPlan::none(g.num_vertices());
        let d = Degrees::of(&g);
        let lgs = build_vertex_cut_graphs(&g, &cut, &plan, &P, &d);
        for lg in &lgs {
            let bytes = encode_vc_graph(lg);
            let back: VcLocalGraph<f64> = decode_vc_graph(&bytes).unwrap();
            assert_eq!(&back, lg);
        }
    }

    #[test]
    fn vc_snapshot_roundtrips() {
        let g = gen::power_law(150, 2.0, 4, 11);
        let cut = RandomVertexCut.partition(&g, 3);
        let plan = FtPlan::none(g.num_vertices());
        let d = Degrees::of(&g);
        let mut lgs = build_vertex_cut_graphs(&g, &cut, &plan, &P, &d);
        let snap = encode_vc_snapshot(&lgs[1], 3);
        for v in lgs[1].verts.iter_mut() {
            v.value = -5.0;
        }
        assert_eq!(apply_vc_snapshot(&mut lgs[1], &snap).unwrap(), 3);
        for v in lgs[1].verts.iter().filter(|v| v.is_master()) {
            assert_eq!(v.value, f64::from(v.vid.raw()));
        }
    }

    #[test]
    fn ec_sparse_incremental_snapshot_is_smaller_and_roundtrips() {
        let g = gen::power_law(200, 2.0, 5, 5);
        let cut = HashEdgeCut.partition(&g, 2);
        let plan = FtPlan::none(g.num_vertices());
        let d = Degrees::of(&g);
        let mut lgs = build_edge_cut_graphs(&g, &cut, &plan, &P, &d);
        let full = encode_ec_snapshot(&lgs[0], 3);
        // Sparse update: only three masters moved since the last epoch.
        let dirty: Vec<u32> = lgs[0]
            .verts
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_master())
            .map(|(pos, _)| pos as u32)
            .take(3)
            .collect();
        assert_eq!(dirty.len(), 3);
        for &pos in &dirty {
            lgs[0].verts[pos as usize].value = 42.0;
        }
        let inc = encode_ec_snapshot_inc(&lgs[0], 4, &dirty);
        assert!(
            inc.len() < full.len(),
            "sparse delta ({} B) must undercut the full snapshot ({} B)",
            inc.len(),
            full.len()
        );
        // Chain full + delta onto a wrecked graph: dirty values come from the
        // delta, the rest from the base.
        let mut target = build_edge_cut_graphs(&g, &cut, &plan, &P, &d).remove(0);
        for v in target.verts.iter_mut() {
            v.value = -1.0;
        }
        assert_eq!(apply_ec_snapshot(&mut target, &full).unwrap(), 3);
        assert_eq!(apply_ec_snapshot_inc(&mut target, &inc).unwrap(), 4);
        for (v, want) in target.verts.iter().zip(&lgs[0].verts) {
            if v.is_master() {
                assert_eq!(
                    (v.value, v.active, v.last_activate),
                    (want.value, want.active, want.last_activate)
                );
            } else {
                assert_eq!(v.value, -1.0); // replicas untouched by data snapshots
            }
        }
    }

    #[test]
    fn vc_sparse_incremental_snapshot_is_smaller_and_roundtrips() {
        let g = gen::power_law(200, 2.0, 5, 7);
        let cut = RandomVertexCut.partition(&g, 3);
        let plan = FtPlan::none(g.num_vertices());
        let d = Degrees::of(&g);
        let mut lgs = build_vertex_cut_graphs(&g, &cut, &plan, &P, &d);
        let full = encode_vc_snapshot(&lgs[1], 3);
        let dirty: Vec<u32> = lgs[1]
            .verts
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_master())
            .map(|(pos, _)| pos as u32)
            .take(2)
            .collect();
        assert_eq!(dirty.len(), 2);
        for &pos in &dirty {
            lgs[1].verts[pos as usize].value = 9.0;
        }
        let inc = encode_vc_snapshot_inc(&lgs[1], 4, &dirty);
        assert!(
            inc.len() < full.len(),
            "sparse delta ({} B) must undercut the full snapshot ({} B)",
            inc.len(),
            full.len()
        );
        let mut target = build_vertex_cut_graphs(&g, &cut, &plan, &P, &d).remove(1);
        for v in target.verts.iter_mut() {
            v.value = -5.0;
        }
        assert_eq!(apply_vc_snapshot(&mut target, &full).unwrap(), 3);
        assert_eq!(apply_vc_snapshot_inc(&mut target, &inc).unwrap(), 4);
        for (v, want) in target.verts.iter().zip(&lgs[1].verts) {
            if v.is_master() {
                assert_eq!(v.value, want.value);
            }
        }
    }

    #[test]
    fn edge_ckpt_roundtrips() {
        let edges = vec![
            (Vid::new(0), Vid::new(1), 1.5),
            (Vid::new(7), Vid::new(3), -2.0),
        ];
        let bytes = encode_edge_ckpt(&edges);
        assert_eq!(decode_edge_ckpt(&bytes).unwrap(), edges);
    }

    #[test]
    fn varint_snapshots_undercut_fixed_width() {
        // The scalar codec spent 4 bytes per position and 1 per flag; the
        // varint columns must beat ⌈n·(4+1) / (1 + 2/8)⌉ comfortably. Pin the
        // ratio loosely so codec tweaks don't thrash the test.
        let g = gen::power_law(400, 2.0, 6, 13);
        let cut = HashEdgeCut.partition(&g, 2);
        let plan = FtPlan::none(g.num_vertices());
        let d = Degrees::of(&g);
        let lgs = build_edge_cut_graphs(&g, &cut, &plan, &P, &d);
        let masters = lgs[0].num_masters();
        let snap = encode_ec_snapshot(&lgs[0], 1);
        // 8 B value per master + ~1 B position delta + 2 bits of flags,
        // against the old 4 B position + 2 B bools.
        let old_layout = 8 + 4 + (masters as u64) * (4 + 8 + 2);
        assert!(
            (snap.len() as u64) < old_layout,
            "varint snapshot {} B must undercut fixed layout {} B",
            snap.len(),
            old_layout
        );
    }

    #[test]
    fn corrupt_snapshot_is_rejected() {
        let bytes = encode_edge_ckpt(&[(Vid::new(0), Vid::new(1), 1.0)]);
        assert!(decode_edge_ckpt(&bytes[..bytes.len() - 1]).is_err());
        let mut graph_bytes = vec![0u8; 3];
        graph_bytes.extend_from_slice(&bytes);
        assert!(decode_ec_graph::<f64>(&graph_bytes).is_err());
    }
}

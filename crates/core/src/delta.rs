//! Delta-encoded sync records.
//!
//! On top of redundant-sync *suppression* (ship nothing when the replica
//! already holds the value, `suppress.rs`), values that changed only
//! slightly can ship as a **delta**: the minimal contiguous span of encoded
//! bytes that differs from the value the destination already holds. The
//! [`crate::suppress::SyncFilter`] already keeps exactly the base needed —
//! the last committed record shipped to each destination, with a
//! per-destination validity epoch — so a delta is legal toward a
//! destination precisely when suppression toward it would have been legal
//! had the value matched.
//!
//! Wire layout of one framed sync record (`flags` bit 0 = activate,
//! bit 1 = delta):
//!
//! ```text
//! full : pos:u32  flags:u8  value-bytes            = 5 + len
//! delta: pos:u32  flags:u8  start:u16 len:u16 span = 9 + span
//! ```
//!
//! The framed full record costs exactly what the legacy accounting charged
//! (`VertexSync::wire_bytes` = 4 + len + 1), so enabling the codec is
//! accounting-neutral whenever no delta applies; a delta is chosen only
//! when no larger ([`sync_record_bytes`] is the single size rule the
//! encoder and the driver's accounting both use). Deltas require the old
//! and new encodings to have the same width (true for all fixed-width
//! vertex values: PageRank f64, labels u32, …).
//!
//! Determinism: the span is computed at *stage* time on the main thread,
//! from the filter entry and the new value only — independent of thread
//! count, pipelining, and destination — so byte accounting is bit-identical
//! to a serial run.

use imitator_storage::codec::{decode, Decode, DecodeError, Encode, Reader};

/// Flag bit 0: the record's scatter/activate bit.
const FLAG_ACTIVATE: u8 = 1 << 0;
/// Flag bit 1: the payload is a `(start, len, span-bytes)` delta.
const FLAG_DELTA: u8 = 1 << 1;

/// Minimal contiguous differing-byte span between two equal-width
/// encodings, as `(start, len)`; `len == 0` when the bytes are identical
/// (the record still ships because its activate bit differs). `None` when
/// the widths differ or exceed the u16 frame fields.
pub(crate) fn min_span(old: &[u8], new: &[u8]) -> Option<(u16, u16)> {
    if old.len() != new.len() || new.len() > u16::MAX as usize {
        return None;
    }
    let first = match old.iter().zip(new).position(|(a, b)| a != b) {
        None => return Some((0, 0)),
        Some(i) => i,
    };
    let last = old
        .iter()
        .zip(new)
        .rposition(|(a, b)| a != b)
        .expect("a first differing byte implies a last");
    Some((first as u16, (last - first + 1) as u16))
}

/// Wire size of one framed sync record for a value of encoded width
/// `value_len`, given the staged delta span (if any): the delta layout is
/// used iff it is no larger than the full layout. This is the single
/// size rule shared by [`encode_sync_record`] and the driver's byte
/// accounting, keeping accounted bytes equal to encoded bytes.
pub(crate) fn sync_record_bytes(value_len: usize, span: Option<(u16, u16)>) -> usize {
    let full = 4 + value_len + 1;
    match span {
        Some((_, len)) if 9 + len as usize <= full => 9 + len as usize,
        _ => full,
    }
}

/// Encodes one framed sync record, choosing delta vs full with the same
/// rule as [`sync_record_bytes`].
pub(crate) fn encode_sync_record(
    pos: u32,
    activate: bool,
    old: Option<&[u8]>,
    new: &[u8],
    out: &mut Vec<u8>,
) {
    let span = old.and_then(|o| min_span(o, new));
    pos.encode(out);
    let act = if activate { FLAG_ACTIVATE } else { 0 };
    match span {
        Some((start, len)) if 9 + len as usize <= 4 + new.len() + 1 => {
            (act | FLAG_DELTA).encode(out);
            start.encode(out);
            len.encode(out);
            out.extend_from_slice(&new[start as usize..(start + len) as usize]);
        }
        _ => {
            act.encode(out);
            out.extend_from_slice(new);
        }
    }
}

/// One decoded framed sync record: the reassembled full value bytes plus
/// the activate bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SyncRecord {
    pub pos: u32,
    pub activate: bool,
    pub value: Vec<u8>,
}

/// Decodes one framed sync record, resolving deltas against `base` (the
/// destination's current encoded value for `pos`, exactly what the
/// sender's filter entry recorded as installed there).
pub(crate) fn decode_sync_record(
    buf: &[u8],
    base: impl FnOnce(u32) -> Vec<u8>,
) -> Result<SyncRecord, DecodeError> {
    struct Frame {
        pos: u32,
        flags: u8,
        rest: Vec<u8>,
    }
    impl Decode for Frame {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            let pos = u32::decode(r)?;
            let flags = u8::decode(r)?;
            let rest = r.take(r.remaining())?.to_vec();
            Ok(Frame { pos, flags, rest })
        }
    }
    let f: Frame = decode(buf)?;
    let activate = f.flags & FLAG_ACTIVATE != 0;
    if f.flags & FLAG_DELTA == 0 {
        return Ok(SyncRecord {
            pos: f.pos,
            activate,
            value: f.rest,
        });
    }
    let mut r = Reader::new(&f.rest);
    let start = u16::decode(&mut r)? as usize;
    let len = u16::decode(&mut r)? as usize;
    let span = r.take(len)?.to_vec();
    let mut value = base(f.pos);
    if start + len > value.len() {
        return Err(DecodeError::Corrupt("delta span exceeds base value"));
    }
    value[start..start + len].copy_from_slice(&span);
    Ok(SyncRecord {
        pos: f.pos,
        activate,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::VertexSync;

    #[test]
    fn min_span_finds_tightest_window() {
        assert_eq!(min_span(b"abcdef", b"abXYef"), Some((2, 2)));
        assert_eq!(min_span(b"abcdef", b"Xbcdef"), Some((0, 1)));
        assert_eq!(min_span(b"abcdef", b"abcdeX"), Some((5, 1)));
        assert_eq!(min_span(b"abc", b"abc"), Some((0, 0)));
        assert_eq!(min_span(b"abc", b"abcd"), None, "width change → no delta");
    }

    #[test]
    fn full_frame_costs_exactly_the_legacy_accounting() {
        for len in [1usize, 4, 8, 32] {
            assert_eq!(
                sync_record_bytes(len, None),
                VertexSync::<u8>::wire_bytes(len),
                "framed full record must be accounting-neutral"
            );
        }
    }

    #[test]
    fn delta_chosen_only_when_no_larger_than_full() {
        // f64-sized value (8 bytes): full = 13, delta = 9 + span.
        assert_eq!(sync_record_bytes(8, Some((0, 2))), 11);
        assert_eq!(sync_record_bytes(8, Some((0, 4))), 13); // tie → delta
        assert_eq!(sync_record_bytes(8, Some((0, 5))), 13, "larger span → full");
        // u32-sized value (4 bytes): full = 9, delta never smaller, tie at 0.
        assert_eq!(sync_record_bytes(4, Some((0, 1))), 9);
        assert_eq!(sync_record_bytes(4, Some((0, 0))), 9);
    }

    #[test]
    fn accounted_sizes_match_codec() {
        // The driver charges sync_record_bytes; the encoder must emit
        // exactly that many bytes for every representable case.
        let cases: &[(&[u8], &[u8])] = &[
            (&[0; 8], &[0, 0, 7, 7, 0, 0, 0, 0]), // mid span
            (&[1; 8], &[1; 8]),                   // identical bytes, bit flip
            (&[2; 8], &[9; 8]),                   // everything changed
            (&[3; 4], &[3, 9, 9, 3]),             // small value
        ];
        for (old, new) in cases {
            let mut buf = Vec::new();
            encode_sync_record(42, true, Some(old), new, &mut buf);
            assert_eq!(
                buf.len(),
                sync_record_bytes(new.len(), min_span(old, new)),
                "old={old:?} new={new:?}"
            );
        }
        // No base → full frame, still matching the accounting.
        let mut buf = Vec::new();
        encode_sync_record(7, false, None, &[5; 8], &mut buf);
        assert_eq!(buf.len(), sync_record_bytes(8, None));
    }

    #[test]
    fn roundtrip_delta_and_full() {
        let old = [0u8, 1, 2, 3, 4, 5, 6, 7];
        let new = [0u8, 1, 9, 9, 4, 5, 6, 7];
        let mut buf = Vec::new();
        encode_sync_record(3, true, Some(&old), &new, &mut buf);
        let rec = decode_sync_record(&buf, |pos| {
            assert_eq!(pos, 3);
            old.to_vec()
        })
        .unwrap();
        assert_eq!(rec.pos, 3);
        assert!(rec.activate);
        assert_eq!(rec.value, new);

        // Full record needs no base.
        let mut buf = Vec::new();
        encode_sync_record(9, false, None, &new, &mut buf);
        let rec = decode_sync_record(&buf, |_| unreachable!("full record")).unwrap();
        assert_eq!((rec.pos, rec.activate), (9, false));
        assert_eq!(rec.value, new);
    }

    #[test]
    fn identical_bytes_with_flipped_bit_ships_zero_span_delta() {
        let v = [7u8; 8];
        let mut buf = Vec::new();
        encode_sync_record(0, true, Some(&v), &v, &mut buf);
        assert_eq!(buf.len(), 9, "zero-length span");
        let rec = decode_sync_record(&buf, |_| v.to_vec()).unwrap();
        assert!(rec.activate);
        assert_eq!(rec.value, v);
    }

    #[test]
    fn corrupt_delta_span_is_rejected() {
        let old = [1u8; 8];
        let new = [1u8, 1, 1, 1, 1, 1, 1, 9];
        let mut buf = Vec::new();
        encode_sync_record(0, false, Some(&old), &new, &mut buf);
        // Destination's base is unexpectedly narrower than the span needs.
        assert!(decode_sync_record(&buf, |_| vec![0u8; 2]).is_err());
    }
}

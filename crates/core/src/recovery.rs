//! The model-generic recovery state machine.
//!
//! One implementation of the paper's three recovery paths — Rebirth (§5.1),
//! Migration (§5.2), and the checkpoint baseline (§2.2-2.3) — driven through
//! the [`ComputeModel`] reconstruction primitives. Strategy selection,
//! standby dispatch, the barrier-separated migration rounds R1-R8, the
//! snapshot-chain replay, and the post-reload full-sync round all live here
//! exactly once; the models contribute only entry encoding/placement and
//! their genuinely different reload sources (edge-ckpt files, activation
//! replay).

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use imitator_cluster::{Envelope, NodeId};
use imitator_engine::CopyKind;
use imitator_graph::Vid;
use imitator_metrics::{CommKind, CommStats, Stopwatch};

use crate::driver::{
    collect_syncs, round_msgs, ComputeModel, Ctx, ModelGraph, Shared, St, RECOVERY_PATIENCE,
};
use crate::msg::{MirrorUpdate, Promotion, ProtoMsg, RebirthBatch, ReplicaGrant, VertexSync};
use crate::plan::{responsible_mirror, ReplicaMeta};
use crate::report::RecoveryReport;
use crate::{FtMode, RecoveryStrategy};

/// Per-destination batches of mirror designations / full-state refreshes
/// (migration R5/R7).
type MirrorUpdates<M> =
    HashMap<NodeId, Vec<MirrorUpdate<<M as ComputeModel>::Value, <M as ComputeModel>::Meta>>>;

/// Shared migration bookkeeping, threaded through the rounds. `extra` is
/// the model's own state (the edge wiring the generic rounds don't know
/// about).
#[derive(Default)]
pub(crate) struct Mig<X> {
    /// Masters whose meta changed (need a final meta refresh in R7).
    pub dirty_masters: HashSet<u32>,
    /// Vertex copies recovered (promotions + placed replicas).
    pub recovered: u64,
    /// Edges recovered (model-wired).
    pub edges_recovered: u64,
    /// Recovery traffic sent by this node.
    pub comm: CommStats,
    /// Vertices this node promoted to master.
    pub promoted: Vec<Vid>,
    /// Model-specific round-to-round state.
    pub extra: X,
}

/// Read-only migration context handed to model hooks.
pub(crate) struct MigEnv<'a> {
    /// The crashed nodes.
    pub dead: &'a [NodeId],
    /// This node.
    pub me: NodeId,
    /// Promotions performed *by this node* in R1.
    pub promotions: &'a [Promotion],
    /// Every promotion in the cluster, indexed by the crashed
    /// `(node, position)` it vacated — for rewriting position-addressed
    /// consumer tables.
    pub promo_by_old: &'a HashMap<(NodeId, u32), Promotion>,
}

/// Dispatches one recovery episode by the configured strategy, then
/// restores model invariants the recovery may have disturbed.
pub(crate) fn recover<M: ComputeModel>(
    ctx: &Ctx<M>,
    lg: &mut M::Graph,
    shared: &Shared<M>,
    st: &mut St<M>,
    dead: &[NodeId],
    resume_iter: u64,
) {
    match shared.cfg.ft {
        FtMode::None => panic!("node failure injected with fault tolerance disabled"),
        FtMode::Checkpoint { .. } => ckpt_recover_survivor(ctx, lg, shared, st, dead, resume_iter),
        FtMode::Replication {
            recovery: RecoveryStrategy::Rebirth,
            ..
        } => rebirth_survivor(ctx, lg, shared, st, dead, resume_iter),
        FtMode::Replication {
            recovery: RecoveryStrategy::Migration,
            ..
        } => migrate(ctx, lg, shared, st, dead, resume_iter),
    }
    shared.model.after_recovery(lg);
}

fn batch_for<E>(batches: &mut HashMap<NodeId, Vec<E>>, d: NodeId) -> &mut Vec<E> {
    batches
        .get_mut(&d)
        .unwrap_or_else(|| panic!("no rebirth batch slot for crashed node {d}"))
}

// --------------------------------------------------------------------------
// Rebirth (§5.1)
// --------------------------------------------------------------------------

fn rebirth_survivor<M: ComputeModel>(
    ctx: &Ctx<M>,
    lg: &mut M::Graph,
    shared: &Shared<M>,
    st: &mut St<M>,
    dead: &[NodeId],
    resume_iter: u64,
) {
    let me = ctx.id();
    let survivors = st.mark_dead(dead);
    let num_survivors = survivors.len() as u32;

    // The leader hands each crashed identity to a hot standby *before*
    // entering the membership barrier, so the barrier cannot complete
    // without the newbies.
    if me == st.leader() {
        for &d in dead {
            assert!(
                ctx.cluster().dispatch_standby(d),
                "Rebirth recovery of {d} requires a hot standby"
            );
        }
    }
    ctx.enter_barrier();

    // Reloading (§5.1.1): scan local masters and mirrors, build one batch
    // per crashed node. The responsible mirror (first surviving node in
    // mirror-ID order) recovers the master; every master recovers its own
    // lost replicas.
    let sw = Stopwatch::start();
    let mut batches: HashMap<NodeId, Vec<M::Entry>> = HashMap::new();
    for d in dead {
        batches.insert(*d, Vec::new());
    }
    let mut promoted: Vec<Vid> = Vec::new();
    for pos in 0..lg.len() as u32 {
        match lg.kind(pos) {
            CopyKind::Master => {
                let meta = lg
                    .meta(pos)
                    .unwrap_or_else(|| panic!("master {} has no full state", lg.vid(pos)));
                for &d in dead {
                    if let Some(rpos) = meta.replica_position_on(d) {
                        let kind = if meta.mirror_nodes().contains(&d) {
                            CopyKind::Mirror
                        } else {
                            CopyKind::Replica
                        };
                        let entry = shared.model.replica_entry(lg, pos, d, rpos, kind);
                        batch_for(&mut batches, d).push(entry);
                    }
                }
            }
            CopyKind::Mirror => {
                let master = lg.master_node(pos);
                if !dead.contains(&master) {
                    continue;
                }
                let meta = lg
                    .meta(pos)
                    .unwrap_or_else(|| panic!("mirror {} has no full state", lg.vid(pos)));
                if responsible_mirror(meta, &st.alive) != Some(me) {
                    continue;
                }
                // Recover the master at its original position...
                let entry = shared.model.master_entry(lg, pos);
                batch_for(&mut batches, master).push(entry);
                promoted.push(lg.vid(pos));
                // ...and, under multiple failures, any of its replicas lost
                // on *other* crashed nodes.
                for &d in dead {
                    if d == master {
                        continue;
                    }
                    if let Some(rpos) = meta.replica_position_on(d) {
                        let kind = if meta.mirror_nodes().contains(&d) {
                            CopyKind::Mirror
                        } else {
                            CopyKind::Replica
                        };
                        let entry = shared.model.replica_entry(lg, pos, d, rpos, kind);
                        batch_for(&mut batches, d).push(entry);
                    }
                }
            }
            CopyKind::Replica => {}
        }
    }
    let mut recovered = 0u64;
    let mut recovered_edges = 0u64;
    let mut comm = CommStats::default();
    for (d, entries) in batches {
        recovered += entries.len() as u64;
        recovered_edges += entries
            .iter()
            .map(|e| shared.model.entry_edges(e))
            .sum::<u64>();
        let bytes: u64 = entries
            .iter()
            .map(|e| shared.model.entry_wire_bytes(e))
            .sum();
        comm.record(1, bytes);
        ctx.send_kind(
            d,
            ProtoMsg::Rebirth(Box::new(RebirthBatch {
                resume_iter,
                num_survivors,
                entries,
            })),
            bytes,
            CommKind::Recovery,
        );
    }
    let reload = sw.elapsed();
    ctx.enter_barrier();

    // Membership restored: the newbies carry the crashed identities.
    for d in dead {
        st.alive[d.index()] = true;
    }
    promoted.sort_unstable();
    let mut contacted = dead.to_vec();
    contacted.sort_unstable();
    st.recoveries.push(RecoveryReport {
        strategy: "rebirth",
        failed_nodes: dead.len(),
        reload,
        reconstruct: Duration::ZERO,
        replay: Duration::ZERO,
        vertices_recovered: recovered,
        edges_recovered: recovered_edges,
        comm,
        promoted,
        contacted,
    });
}

/// A newbie reconstructing a crashed identity: receive one batch from every
/// survivor (placement is position-addressed, so reconstruction happens on
/// the fly, §5.1.2), reload any model-specific extra state, validate, and
/// replay (§5.1.3).
pub(crate) fn rebirth_newbie<M: ComputeModel>(
    ctx: &Ctx<M>,
    shared: &Shared<M>,
    st: &mut St<M>,
) -> M::Graph {
    let me = ctx.id();
    ctx.enter_barrier(); // membership barrier

    let sw = Stopwatch::start();
    let mut lg = shared.model.empty_graph(me);
    let mut got = 0u32;
    let mut expected: Option<u32> = None;
    let mut resume_iter = 0u64;
    while expected.is_none_or(|e| got < e) {
        let env = ctx
            .recv_timeout(RECOVERY_PATIENCE)
            .expect("rebirth batch from survivor");
        match env.msg {
            ProtoMsg::Rebirth(batch) => {
                expected = Some(batch.num_survivors);
                resume_iter = batch.resume_iter;
                got += 1;
                for e in batch.entries {
                    shared.model.insert_entry(&mut lg, e);
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    shared.model.rebirth_reload_extra(&mut lg, shared);
    let reload = sw.elapsed();

    // Reconstruction is implicit; validate the rebuilt layout, then run the
    // model's replay (activation fix-ups for the sparse engine; the dense
    // engine's next apply refreshes everything, so its replay is zero).
    let mut sw = Stopwatch::start();
    shared.model.validate(&lg);
    let reconstruct = sw.lap();
    let replay = if shared.model.rebirth_replay(&mut lg, shared, resume_iter) {
        sw.lap()
    } else {
        Duration::ZERO
    };

    let (vertices, edges) = shared.model.graph_stats(&lg);
    st.iter = resume_iter;
    st.recoveries.push(RecoveryReport {
        strategy: "rebirth",
        failed_nodes: 1,
        reload,
        reconstruct,
        replay,
        vertices_recovered: vertices,
        edges_recovered: edges,
        comm: CommStats::default(),
        promoted: Vec::new(),
        contacted: Vec::new(),
    });
    ctx.enter_barrier(); // reconstruction barrier
    lg
}

// --------------------------------------------------------------------------
// Migration (§5.2): eight barrier-separated rounds
// --------------------------------------------------------------------------

#[allow(clippy::too_many_lines)]
fn migrate<M: ComputeModel>(
    ctx: &Ctx<M>,
    lg: &mut M::Graph,
    shared: &Shared<M>,
    st: &mut St<M>,
    dead: &[NodeId],
    resume_iter: u64,
) {
    let me = ctx.id();
    let survivors = st.mark_dead(dead);
    let others: Vec<NodeId> = survivors.iter().copied().filter(|&n| n != me).collect();
    let tolerance = match shared.cfg.ft {
        FtMode::Replication { tolerance, .. } => tolerance,
        _ => unreachable!("migrate requires replication FT"),
    };
    let mut mig: Mig<M::MigExtra> = Mig::default();
    let sw_total = Stopwatch::start();

    // ---- R1: promote local mirrors whose master died (the responsible
    //      mirror wins), purge crashed locations, announce promotions.
    let mut promotions: Vec<Promotion> = Vec::new();
    for pos in 0..lg.len() as u32 {
        match lg.kind(pos) {
            CopyKind::Mirror if dead.contains(&lg.master_node(pos)) => {
                let vid = lg.vid(pos);
                let meta = lg
                    .meta(pos)
                    .unwrap_or_else(|| panic!("mirror {vid} has no full state"));
                if responsible_mirror(meta, &st.alive) != Some(me) {
                    continue;
                }
                let old_node = lg.master_node(pos);
                let old_pos = meta.master_pos();
                lg.set_kind(pos, CopyKind::Master);
                lg.set_master_node(pos, me);
                let meta = lg.meta_mut(pos).unwrap_or_else(|| {
                    panic!("promoted mirror {vid} at position {pos} has no full state")
                });
                meta.set_master_pos(pos);
                meta.purge_node(me);
                for &d in dead {
                    meta.purge_node(d);
                }
                shared.model.on_promote(lg, pos, &mut mig);
                promotions.push(Promotion {
                    vid,
                    new_master: me,
                    new_pos: pos,
                    old_node,
                    old_pos,
                });
                mig.dirty_masters.insert(pos);
                mig.promoted.push(vid);
                st.overlay.insert(vid, me);
                mig.recovered += 1;
            }
            CopyKind::Master => {
                // Purge crashed replica locations from the location tables.
                let vid = lg.vid(pos);
                let meta = lg
                    .meta_mut(pos)
                    .unwrap_or_else(|| panic!("master {vid} has no full state"));
                let before = meta.replica_nodes().len() + meta.mirror_nodes().len();
                for &d in dead {
                    meta.purge_node(d);
                }
                if meta.replica_nodes().len() + meta.mirror_nodes().len() != before {
                    mig.dirty_masters.insert(pos);
                }
            }
            _ => {}
        }
    }
    for &n in &others {
        let bytes = (promotions.len() * 20) as u64;
        mig.comm.record(1, bytes);
        ctx.send_kind(
            n,
            ProtoMsg::Promote(promotions.clone()),
            bytes,
            CommKind::Recovery,
        );
    }
    ctx.enter_barrier();

    // ---- R2: apply promotions everywhere; let the model fix its location
    //      tables and compute the replica requests it must send.
    let mut promo_by_old: HashMap<(NodeId, u32), Promotion> = HashMap::new();
    let mut all_promos: Vec<Promotion> = promotions.clone();
    for env in round_msgs::<M>(ctx, st) {
        match env.msg {
            ProtoMsg::Promote(batch) => all_promos.extend(batch),
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    for p in &all_promos {
        promo_by_old.insert((p.old_node, p.old_pos), *p);
        st.overlay.insert(p.vid, p.new_master);
        if p.new_master == me {
            continue; // own promotions already fixed in R1
        }
        if let Some(pos) = lg.position(p.vid) {
            lg.set_master_node(pos, p.new_master);
            if let Some(meta) = lg.meta_mut(pos) {
                meta.set_master_pos(p.new_pos);
                for &d in dead {
                    meta.purge_node(d);
                }
                meta.purge_node(p.new_master);
            }
        }
    }
    let menv = MigEnv {
        dead,
        me,
        promotions: &promotions,
        promo_by_old: &promo_by_old,
    };
    let mut requests = shared
        .model
        .migration_requests(lg, shared, st, &mut mig, &menv);
    for &n in &others {
        let req = requests.remove(&n).unwrap_or_default();
        let bytes = (req.len() * 4) as u64;
        mig.comm.record(1, bytes);
        ctx.send_kind(n, ProtoMsg::ReplicaRequest(req), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R3: grant requested replicas.
    let mut grants: HashMap<NodeId, Vec<ReplicaGrant<M::Value>>> = HashMap::new();
    for env in round_msgs::<M>(ctx, st) {
        match env.msg {
            ProtoMsg::ReplicaRequest(req) => {
                for vid in req {
                    let pos = lg
                        .position(vid)
                        .unwrap_or_else(|| panic!("request for {vid} but no copy on {me}"));
                    debug_assert!(lg.is_master(pos), "replica request routed to non-master");
                    grants.entry(env.from).or_default().push(ReplicaGrant {
                        vid,
                        value: lg.value(pos).clone(),
                        last_activate: shared.model.scatter_bit(lg, pos),
                        master_node: me,
                    });
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    for &n in &others {
        let g = grants.remove(&n).unwrap_or_default();
        let bytes: u64 = g
            .iter()
            .map(|x| 16 + shared.model.value_wire_bytes(&x.value) as u64)
            .sum();
        mig.comm.record(1, bytes);
        ctx.send_kind(n, ProtoMsg::ReplicaGrant(g), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R4: place granted replicas, let the model wire edges (promoted
    //      masters' in-edges / adopted edge-ckpt edges), report placements.
    let mut placements: HashMap<NodeId, Vec<(Vid, u32)>> = HashMap::new();
    for env in round_msgs::<M>(ctx, st) {
        match env.msg {
            ProtoMsg::ReplicaGrant(gs) => {
                for g in gs {
                    debug_assert!(
                        lg.position(g.vid).is_none(),
                        "duplicate grant for {}",
                        g.vid
                    );
                    let vid = g.vid;
                    let master_node = g.master_node;
                    let pos = shared.model.place_granted(lg, g);
                    placements.entry(master_node).or_default().push((vid, pos));
                    mig.recovered += 1;
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    shared.model.migration_wire(lg, &mut mig, resume_iter);
    for &n in &others {
        let p = placements.remove(&n).unwrap_or_default();
        let bytes = (p.len() * 8) as u64;
        mig.comm.record(1, bytes);
        ctx.send_kind(n, ProtoMsg::ReplicaPlaced(p), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R5: record placements; restore the fault-tolerance level by
    //      designating replacement mirrors (§5.2.1), creating fresh FT
    //      replicas where no replica is available.
    for env in round_msgs::<M>(ctx, st) {
        match env.msg {
            ProtoMsg::ReplicaPlaced(ps) => {
                for (vid, pos) in ps {
                    let mpos = lg.position(vid).expect("placement for unknown master");
                    debug_assert!(lg.is_master(mpos));
                    lg.meta_mut(mpos)
                        .unwrap_or_else(|| {
                            panic!("master {vid} has no full state to register a replica")
                        })
                        .register_replica(env.from, pos);
                    mig.dirty_masters.insert(mpos);
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    // The FT level cannot exceed the surviving cluster's capacity: each
    // mirror needs a distinct node other than the master's.
    let restorable = tolerance.min(survivors.len().saturating_sub(1));
    let mut mirror_updates: MirrorUpdates<M> = HashMap::new();
    for pos in 0..lg.len() as u32 {
        if !lg.is_master(pos) {
            continue;
        }
        loop {
            let vid = lg.vid(pos);
            let meta = lg
                .meta(pos)
                .unwrap_or_else(|| panic!("master {vid} has no full state"));
            if meta.mirror_nodes().len() >= restorable {
                break;
            }
            // Prefer upgrading an existing replica; otherwise create a new
            // FT replica on the least-assigned survivor.
            let candidate = meta
                .replica_nodes()
                .iter()
                .copied()
                .filter(|n| !meta.mirror_nodes().contains(n))
                .min_by_key(|n| (st.mirror_assign[n.index()], n.index()));
            let (target, fresh) = match candidate {
                Some(n) => (n, false),
                None => {
                    let n = survivors
                        .iter()
                        .copied()
                        .filter(|&n| n != me && !meta.replica_nodes().contains(&n))
                        .min_by_key(|n| (st.mirror_assign[n.index()], n.index()))
                        .expect("enough survivors to restore the FT level");
                    (n, true)
                }
            };
            st.mirror_assign[target.index()] += 1;
            let scatter = shared.model.scatter_bit(lg, pos);
            let meta = lg
                .meta_mut(pos)
                .unwrap_or_else(|| panic!("master {vid} has no full state to designate a mirror"));
            meta.add_mirror(target);
            let boxed = Box::new(meta.clone());
            mirror_updates
                .entry(target)
                .or_default()
                .push(MirrorUpdate {
                    vid,
                    meta: boxed,
                    // Position is reported back in R6 for fresh replicas.
                    value: fresh.then(|| lg.value(pos).clone()),
                    last_activate: scatter,
                    master_node: me,
                });
            mig.dirty_masters.insert(pos);
        }
    }
    for &n in &others {
        let ups = mirror_updates.remove(&n).unwrap_or_default();
        let bytes: u64 = ups
            .iter()
            .map(|u| shared.model.meta_update_bytes(&u.meta))
            .sum();
        mig.comm.record(1, bytes);
        ctx.send_kind(n, ProtoMsg::MirrorUpdate(ups), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R6: adopt mirror designations; report fresh FT-replica positions.
    let mut fresh_placements: HashMap<NodeId, Vec<(Vid, u32)>> = HashMap::new();
    for env in round_msgs::<M>(ctx, st) {
        match env.msg {
            ProtoMsg::MirrorUpdate(ups) => {
                for u in ups {
                    match lg.position(u.vid) {
                        Some(pos) => {
                            lg.set_kind(pos, CopyKind::Mirror);
                            lg.set_meta(pos, u.meta);
                            lg.set_master_node(pos, u.master_node);
                        }
                        None => {
                            let vid = u.vid;
                            let master_node = u.master_node;
                            let pos = shared.model.place_fresh_mirror(lg, u);
                            fresh_placements
                                .entry(master_node)
                                .or_default()
                                .push((vid, pos));
                        }
                    }
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    for &n in &others {
        let p = fresh_placements.remove(&n).unwrap_or_default();
        let bytes = (p.len() * 8) as u64;
        mig.comm.record(1, bytes);
        ctx.send_kind(n, ProtoMsg::ReplicaPlaced(p), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R7: register fresh placements; push the final full state to every
    //      mirror of each dirty master.
    for env in round_msgs::<M>(ctx, st) {
        match env.msg {
            ProtoMsg::ReplicaPlaced(ps) => {
                for (vid, pos) in ps {
                    let mpos = lg.position(vid).expect("placement for unknown master");
                    lg.meta_mut(mpos)
                        .unwrap_or_else(|| {
                            panic!("master {vid} has no full state to register a replica")
                        })
                        .register_replica(env.from, pos);
                    mig.dirty_masters.insert(mpos);
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    let mut refreshes: MirrorUpdates<M> = HashMap::new();
    for &pos in &mig.dirty_masters {
        if !lg.is_master(pos) {
            continue;
        }
        let meta = lg
            .meta(pos)
            .unwrap_or_else(|| panic!("master {} has no full state", lg.vid(pos)));
        for &m in meta.mirror_nodes() {
            refreshes.entry(m).or_default().push(MirrorUpdate {
                vid: lg.vid(pos),
                meta: Box::new(meta.clone()),
                value: None,
                last_activate: shared.model.scatter_bit(lg, pos),
                master_node: me,
            });
        }
    }
    for &n in &others {
        let ups = refreshes.remove(&n).unwrap_or_default();
        let bytes: u64 = ups
            .iter()
            .map(|u| shared.model.meta_update_bytes(&u.meta))
            .sum();
        mig.comm.record(1, bytes);
        ctx.send_kind(n, ProtoMsg::MirrorUpdate(ups), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();

    // ---- R8: adopt refreshed metas; let the model re-persist invalidated
    //      state; leader acknowledges the recovery.
    for env in round_msgs::<M>(ctx, st) {
        match env.msg {
            ProtoMsg::MirrorUpdate(ups) => {
                for u in ups {
                    let pos = lg.position(u.vid).expect("meta refresh for unknown copy");
                    debug_assert!(!lg.is_master(pos), "meta refresh addressed to the master");
                    lg.set_kind(pos, CopyKind::Mirror);
                    lg.set_master_node(pos, u.master_node);
                    lg.set_meta(pos, u.meta);
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    shared.model.migration_finish(lg, shared, &mig);
    if me == st.leader() {
        for &d in dead {
            ctx.cluster().coordinator().ack_recovered(d);
        }
    }
    ctx.enter_barrier();

    let Mig {
        recovered,
        edges_recovered,
        comm,
        mut promoted,
        ..
    } = mig;
    promoted.sort_unstable();
    st.recoveries.push(RecoveryReport {
        strategy: "migration",
        failed_nodes: dead.len(),
        reload: sw_total.elapsed(),
        reconstruct: Duration::ZERO,
        replay: Duration::ZERO,
        vertices_recovered: recovered,
        edges_recovered,
        comm,
        promoted,
        contacted: others,
    });
}

// --------------------------------------------------------------------------
// Checkpoint recovery (§2.2-2.3)
// --------------------------------------------------------------------------

fn ckpt_recover_survivor<M: ComputeModel>(
    ctx: &Ctx<M>,
    lg: &mut M::Graph,
    shared: &Shared<M>,
    st: &mut St<M>,
    dead: &[NodeId],
    resume_iter: u64,
) {
    let me = ctx.id();
    st.mark_dead(dead);
    if me == st.leader() {
        for &d in dead {
            assert!(
                ctx.cluster().dispatch_standby(d),
                "checkpoint recovery of {d} requires a standby"
            );
        }
    }
    ctx.enter_barrier();

    // Reload: every node (survivors too) rolls back to the last snapshot —
    // for incremental mode, to the initial state plus the snapshot chain.
    let sw = Stopwatch::start();
    let incremental = matches!(
        shared.cfg.ft,
        FtMode::Checkpoint {
            incremental: true,
            ..
        }
    );
    let snap_iter = if st.last_snapshot_iter == 0 {
        shared.model.reset_to_initial(lg, shared);
        // Masters no longer hold their last-shipped values: the filter's
        // entries describe nothing anymore.
        st.sync_filter.clear();
        0
    } else if incremental {
        shared.model.reset_to_initial(lg, shared);
        st.sync_filter.clear();
        apply_snapshot_chain(lg, shared, me, true)
    } else {
        // A full snapshot restores masters only; surviving replicas keep
        // exactly the state our last syncs installed, so the filter stays
        // valid toward survivors. The crashed nodes' replacements are
        // rebuilt from snapshots instead — re-ship everything there.
        for &d in dead {
            st.sync_filter.invalidate_dest(d);
        }
        let bytes = shared
            .dfs
            .read(&format!(
                "{}/ckpt/{}/{}",
                M::PREFIX,
                st.last_snapshot_iter,
                me.raw()
            ))
            .expect("own snapshot present");
        shared.model.apply_snapshot(lg, &bytes)
    };
    st.dirty.clear();
    let reload = sw.elapsed();
    ctx.enter_barrier();

    // Reconstruct: replica values are not in snapshots; masters rebroadcast.
    let sw = Stopwatch::start();
    ckpt_full_sync(ctx, lg, shared, st);
    let reconstruct = sw.elapsed();

    st.iter = snap_iter;
    st.replay_until = resume_iter;
    st.recoveries.push(RecoveryReport {
        strategy: "checkpoint",
        failed_nodes: dead.len(),
        reload,
        reconstruct,
        replay: Duration::ZERO, // accumulated as lost iterations re-run
        vertices_recovered: lg.num_masters() as u64,
        edges_recovered: 0,
        comm: CommStats::default(),
        promoted: Vec::new(),
        contacted: Vec::new(),
    });
    for d in dead {
        st.alive[d.index()] = true;
    }
}

/// A standby reconstructing a crashed identity from the DFS: the immutable
/// topology from the metadata snapshot, then the data snapshot chain.
pub(crate) fn ckpt_newbie<M: ComputeModel>(
    ctx: &Ctx<M>,
    shared: &Shared<M>,
    st: &mut St<M>,
) -> M::Graph {
    let me = ctx.id();
    ctx.enter_barrier();
    let sw = Stopwatch::start();
    let meta_bytes = shared
        .dfs
        .read(&format!("{}/meta/{}", M::PREFIX, me.raw()))
        .expect("metadata snapshot written at load");
    let mut lg = shared.model.decode_graph(&meta_bytes);
    let incremental = matches!(
        shared.cfg.ft,
        FtMode::Checkpoint {
            incremental: true,
            ..
        }
    );
    let snap_iter = apply_snapshot_chain(&mut lg, shared, me, incremental);
    let reload = sw.elapsed();
    ctx.enter_barrier();

    let sw = Stopwatch::start();
    ckpt_full_sync(ctx, &mut lg, shared, st);
    let reconstruct = sw.elapsed();

    let (vertices, edges) = shared.model.graph_stats(&lg);
    st.iter = snap_iter;
    st.last_snapshot_iter = snap_iter;
    st.recoveries.push(RecoveryReport {
        strategy: "checkpoint",
        failed_nodes: 1,
        reload,
        reconstruct,
        replay: Duration::ZERO,
        vertices_recovered: vertices,
        edges_recovered: edges,
        comm: CommStats::default(),
        promoted: Vec::new(),
        contacted: Vec::new(),
    });
    lg
}

/// Post-reload replica refresh: every master pushes its restored state to
/// all of its replicas (one full sync round with its own barrier).
///
/// Records already installed on a destination by our last regular syncs are
/// suppressed (surviving replicas were not rolled back — snapshots hold
/// masters only), which is where redundant-sync suppression pays off most:
/// only vertices that changed since the snapshot are re-shipped to
/// survivors. Recovery cannot be interrupted (failures inject at loop tops
/// only), so staged entries commit immediately, and afterwards every
/// destination provably holds every entry — the filter revalidates fully.
fn ckpt_full_sync<M: ComputeModel>(
    ctx: &Ctx<M>,
    lg: &mut M::Graph,
    shared: &Shared<M>,
    st: &mut St<M>,
) {
    let mut batches: HashMap<NodeId, Vec<VertexSync<M::Value>>> = HashMap::new();
    let mut suppressed = 0u64;
    for pos in 0..lg.len() as u32 {
        if !lg.is_master(pos) {
            continue;
        }
        let scatter = shared.model.scatter_bit(lg, pos);
        let staged = st.sync_filter.stage(pos, lg.value(pos), scatter);
        let meta = lg
            .meta(pos)
            .unwrap_or_else(|| panic!("master {} has no full state", lg.vid(pos)));
        for (&node, &rpos) in meta.replica_nodes().iter().zip(meta.replica_positions()) {
            if st.sync_filter.suppress(staged, node) {
                suppressed += 1;
                continue;
            }
            batches.entry(node).or_default().push(VertexSync {
                pos: rpos,
                value: lg.value(pos).clone(),
                activate: scatter,
            });
        }
    }
    st.sync_filter.commit();
    st.note_suppressed(suppressed);
    for (node, batch) in batches {
        let bytes: u64 = batch
            .iter()
            .map(|s| {
                VertexSync::<M::Value>::wire_bytes(shared.model.value_wire_bytes(&s.value)) as u64
            })
            .sum();
        ctx.send_kind(node, ProtoMsg::Sync(batch), bytes, CommKind::Recovery);
    }
    ctx.enter_barrier();
    let incoming = collect_syncs::<M>(ctx, st);
    shared.model.apply_full_sync(lg, incoming);
    ctx.enter_barrier();
    st.sync_filter.revalidate_all();
}

/// Applies this node's snapshots in ascending iteration order, returning
/// the last applied iteration (0 when none exist). Incremental snapshots
/// form a chain that must be applied in full; for full snapshots only the
/// newest is applied.
fn apply_snapshot_chain<M: ComputeModel>(
    lg: &mut M::Graph,
    shared: &Shared<M>,
    me: NodeId,
    incremental: bool,
) -> u64 {
    let mut iters: Vec<u64> = shared
        .dfs
        .list(&format!("{}/ckpt/", M::PREFIX))
        .iter()
        .filter_map(|p| {
            let mut parts = p.split('/').skip(2);
            let iter: u64 = parts.next()?.parse().ok()?;
            let node: u32 = parts.next()?.parse().ok()?;
            (node == me.raw()).then_some(iter)
        })
        .collect();
    iters.sort_unstable();
    if !incremental {
        iters = iters.split_off(iters.len().saturating_sub(1));
    }
    let mut snap_iter = 0;
    for iter in iters {
        let bytes = shared
            .dfs
            .read(&format!("{}/ckpt/{}/{}", M::PREFIX, iter, me.raw()))
            .expect("listed snapshot readable");
        snap_iter = if incremental {
            shared.model.apply_snapshot_inc(lg, &bytes)
        } else {
            shared.model.apply_snapshot(lg, &bytes)
        };
    }
    snap_iter
}

//! The model-generic, **restartable** recovery state machine.
//!
//! One implementation of the paper's three recovery paths — Rebirth (§5.1),
//! Migration (§5.2), and the checkpoint baseline (§2.2-2.3) — driven through
//! the [`ComputeModel`] reconstruction primitives. Strategy selection,
//! standby dispatch, the barrier-separated migration rounds R1-R8, the
//! snapshot-chain replay, and the post-reload full-sync round all live here
//! exactly once; the models contribute only entry encoding/placement and
//! their genuinely different reload sources (edge-ckpt files, activation
//! replay).
//!
//! # Cascading failures (§5.3)
//!
//! Nodes can crash *while recovery itself is running*. Every barrier inside
//! a recovery attempt therefore doubles as a failure detector: if it reports
//! new failures, the attempt **aborts** — each survivor restores the exact
//! pre-episode state it captured on entry ([`Undo`]), unions the newly
//! crashed nodes into the episode's failure set, runs the [`abort_fence`]
//! (drain stale traffic, re-synchronise on a clean barrier), and restarts
//! the attempt from scratch. Because every attempt starts from the same
//! restored state and the same deterministic protocol, restarts are
//! idempotent: a run that aborts N times converges to bit-identical values
//! as one that never aborted.
//!
//! A standby that observes a failed barrier while it is being reborn cannot
//! restore anything (it has no pre-episode state): it crashes itself and
//! lets the next attempt dispatch a fresh standby. Consequently each aborted
//! attempt may consume standbys, and the strategy degrades gracefully when
//! the pool runs dry: Rebirth falls back to Migration onto the survivors
//! ("rebirth→migration"), and checkpoint recovery grafts the dead
//! partitions' snapshots onto the survivors ("checkpoint→migration") — no
//! panic, no wedged cluster.
//!
//! # Parallelism
//!
//! The heavy, *read-only* recovery phases fan out over the node's persistent
//! [`WorkerPool`] in contiguous position chunks: the Rebirth reload scan,
//! Migration's R1 promotion/purge identification and R7 meta-refresh build,
//! snapshot-chain part reads, checkpoint-fallback partition reconstruction,
//! and the sparse engine's replay recompute. Chunk results are consumed
//! strictly in submission order ([`imitator_engine::InOrder`]), which is
//! ascending position order — exactly the order the serial loops produced —
//! and **every mutation stays on the protocol thread**, so recovery is
//! bit-identical to serial execution for any thread count. Fail points and
//! barriers also never move off the protocol thread, so the PR 5 abort /
//! undo / retry machinery is untouched: at every abortable point all
//! dispatched chunks have already been drained and the local graph's
//! [`std::sync::Arc`] is uniquely held again.
//!
//! Progressive, order-dependent state stays serial by design: Migration R5's
//! mirror designation reads and updates the least-assigned counters
//! (`st.mirror_assign`) across iterations, and the sparse engine's selfish
//! recompute falls back to the serial loop whenever one selfish master feeds
//! another (see `runner_ec.rs`).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use imitator_cluster::{BarrierOutcome, Envelope, FailPoint, NodeCtx, NodeId};
use imitator_engine::{chunk_ranges, CopyKind, WorkerPool};
use imitator_graph::Vid;
use imitator_metrics::{
    CommKind, CommStats, PhaseTimes, RecoveryCounters, Stopwatch, SuspicionStats,
};
use imitator_storage::{epoch, EpochError, EpochKind};

use crate::driver::{
    collect_syncs, graph_mut, round_msgs, ComputeModel, Ctx, ModelGraph, Shared, St,
    RECOVERY_PATIENCE,
};
use crate::msg::{MirrorUpdate, Promotion, ProtoMsg, RebirthBatch, ReplicaGrant, VertexSync};
use crate::plan::{responsible_mirror, ReplicaMeta};
use crate::report::RecoveryReport;
use crate::suppress::SyncFilter;
use crate::{FtMode, RecoveryStrategy};

/// Per-destination batches of mirror designations / full-state refreshes
/// (migration R5/R7).
type MirrorUpdates<M> =
    HashMap<NodeId, Vec<MirrorUpdate<<M as ComputeModel>::Value, <M as ComputeModel>::Meta>>>;

/// One rebirth reload-scan chunk's output: per-crashed-node entry batches
/// (indexed like the episode's `dead` slice) plus the vids this node
/// recovers as master.
type ScanChunk<M> = (Vec<Vec<<M as ComputeModel>::Entry>>, Vec<Vid>);

/// One migration R7 refresh destined for a mirror node.
type Refresh<M> = (
    NodeId,
    MirrorUpdate<<M as ComputeModel>::Value, <M as ComputeModel>::Meta>,
);

/// Accounted bytes of one mirror-update frame (migration R5/R7): frame
/// header, vertex-ID column (zigzag deltas between consecutive records),
/// and the model's per-record meta/value payload estimate. Empty rounds —
/// pure barrier traffic — stay free, as under the scalar codec.
fn mirror_frame_bytes<M: ComputeModel>(
    shared: &Shared<M>,
    ups: &[MirrorUpdate<M::Value, M::Meta>],
) -> u64 {
    if ups.is_empty() {
        return 0;
    }
    let mut prev = 0u32;
    let mut bytes = crate::wire::small_frame_overhead(ups.len() as u64);
    for u in ups {
        bytes += crate::wire::col_delta_bytes(u.vid.raw(), prev);
        bytes += shared.model.meta_update_bytes(&u.meta);
        prev = u.vid.raw();
    }
    bytes
}

/// Shared migration bookkeeping, threaded through the rounds. `extra` is
/// the model's own state (the edge wiring the generic rounds don't know
/// about).
#[derive(Default)]
pub(crate) struct Mig<X> {
    /// Masters whose meta changed (need a final meta refresh in R7).
    pub dirty_masters: HashSet<u32>,
    /// Vertex copies recovered (promotions + placed replicas).
    pub recovered: u64,
    /// Edges recovered (model-wired).
    pub edges_recovered: u64,
    /// Recovery traffic sent by this node.
    pub comm: CommStats,
    /// Vertices this node promoted to master.
    pub promoted: Vec<Vid>,
    /// Model-specific round-to-round state.
    pub extra: X,
}

/// Read-only migration context handed to model hooks.
pub(crate) struct MigEnv<'a> {
    /// The crashed nodes.
    pub dead: &'a [NodeId],
    /// This node.
    pub me: NodeId,
    /// Promotions performed *by this node* in R1.
    pub promotions: &'a [Promotion],
    /// Every promotion in the cluster, indexed by the crashed
    /// `(node, position)` it vacated — for rewriting position-addressed
    /// consumer tables.
    pub promo_by_old: &'a HashMap<(NodeId, u32), Promotion>,
}

/// What grafting one dead partition onto this node produced
/// (checkpoint-fallback recovery, [`ComputeModel::adopt_partition`]).
#[derive(Default)]
pub(crate) struct Adoption {
    /// Masters this node now hosts (announced cluster-wide in round 1 of
    /// the fallback).
    pub promotions: Vec<Promotion>,
    /// Adopted replica copies whose *surviving* master must learn the new
    /// location: `(master's node, vid, local position here)`.
    pub placements: Vec<(NodeId, Vid, u32)>,
    /// Local positions of adopted replica copies whose master died too —
    /// resolved against the cluster-wide promotion set in round 2.
    pub orphans: Vec<u32>,
}

// --------------------------------------------------------------------------
// Attempt plumbing: aborts, undo snapshots, fail points
// --------------------------------------------------------------------------

/// Why a recovery attempt stopped before completing.
enum Abort {
    /// A barrier inside the attempt reported further failures; every
    /// survivor restores its pre-episode state and restarts with the
    /// enlarged failure set.
    Failures(Vec<NodeId>),
    /// This node itself crashed at an injected fail point; it unwinds out
    /// of the recovery machinery and its thread exits.
    Crashed,
}

/// The result of (part of) one recovery attempt.
type Attempt<T> = Result<T, Abort>;

/// Snapshot of the shared failure detector's suspicion counters, stamped
/// onto each [`RecoveryReport`] as the episode closes. Every node snapshots
/// the same detector, so the report merge takes element-wise maxima.
fn suspicion_now<T: Send + 'static>(ctx: &NodeCtx<T>) -> SuspicionStats {
    ctx.cluster().coordinator().suspicion_stats()
}

/// Enters a barrier inside recovery; a failed outcome aborts the attempt.
/// Finding *this node* in the failure list means the detector fenced it
/// (a false suspicion that outlived the fence window): it is no longer a
/// cluster member and must unwind exactly like a crashed node.
fn barrier_ok<T: Send + 'static>(ctx: &NodeCtx<T>) -> Attempt<()> {
    match ctx.enter_barrier() {
        BarrierOutcome::Clean => Ok(()),
        BarrierOutcome::Failed(list) if list.contains(&ctx.id()) => Err(Abort::Crashed),
        BarrierOutcome::Failed(list) => Err(Abort::Failures(list)),
    }
}

/// Like [`barrier_ok`] but for the summing barrier (decision votes).
fn barrier_sum_ok<T: Send + 'static>(ctx: &NodeCtx<T>, v: u64) -> Attempt<u64> {
    match ctx.enter_barrier_sum(v) {
        (BarrierOutcome::Clean, sum) => Ok(sum),
        (BarrierOutcome::Failed(list), _) if list.contains(&ctx.id()) => Err(Abort::Crashed),
        (BarrierOutcome::Failed(list), _) => Err(Abort::Failures(list)),
    }
}

/// Consults the failure injector for a recovery-phase crash at this point;
/// on a hit the node crashes (peers detect it at their next barrier) and
/// unwinds.
fn fail_here<M: ComputeModel>(
    ctx: &Ctx<M>,
    shared: &Shared<M>,
    iter: u64,
    point: FailPoint,
) -> Attempt<()> {
    if shared.injector.should_fail(ctx.id(), iter, point) {
        ctx.crash();
        return Err(Abort::Crashed);
    }
    Ok(())
}

/// Everything a survivor must restore to retry a recovery attempt as if the
/// aborted one never ran: the local graph (values, copy kinds, metas, edge
/// wiring) and every piece of node state the recovery paths mutate.
///
/// Captured once when the episode starts; `restore` clones out of it, so an
/// episode can abort any number of times.
struct Undo<M: ComputeModel> {
    lg: M::Graph,
    overlay: HashMap<Vid, NodeId>,
    mirror_assign: Vec<usize>,
    alive: Vec<bool>,
    sync_filter: SyncFilter,
    dirty: HashSet<u32>,
    iter: u64,
    replay_until: u64,
    last_snapshot_iter: u64,
    suppressed_syncs: u64,
    suppressed_timeline: Vec<(u64, u64)>,
}

impl<M: ComputeModel> Undo<M> {
    fn capture(lg: &M::Graph, st: &St<M>) -> Self {
        Undo {
            lg: lg.clone(),
            overlay: st.overlay.clone(),
            mirror_assign: st.mirror_assign.clone(),
            alive: st.alive.clone(),
            sync_filter: st.sync_filter.clone(),
            dirty: st.dirty.clone(),
            iter: st.iter,
            replay_until: st.replay_until,
            last_snapshot_iter: st.last_snapshot_iter,
            suppressed_syncs: st.suppressed_syncs,
            suppressed_timeline: st.suppressed_timeline.clone(),
        }
    }

    fn restore(&self, lg: &mut M::Graph, st: &mut St<M>) {
        *lg = self.lg.clone();
        st.overlay = self.overlay.clone();
        st.mirror_assign = self.mirror_assign.clone();
        st.alive = self.alive.clone();
        st.sync_filter = self.sync_filter.clone();
        st.dirty = self.dirty.clone();
        st.iter = self.iter;
        st.replay_until = self.replay_until;
        st.last_snapshot_iter = self.last_snapshot_iter;
        st.suppressed_syncs = self.suppressed_syncs;
        st.suppressed_timeline = self.suppressed_timeline.clone();
    }
}

// --------------------------------------------------------------------------
// The episode loop
// --------------------------------------------------------------------------

/// Runs one recovery episode to completion, restarting aborted attempts
/// with the enlarged failure set until one succeeds. Returns `true` when
/// *this node* crashed at an injected recovery-phase fail point (the caller
/// must exit like any other crashed node).
///
/// Time spent fencing aborted attempts accumulates into the successful
/// report's `fence` phase — it is wall-clock the episode really cost.
pub(crate) fn recover<M: ComputeModel>(
    ctx: &Ctx<M>,
    lg: &mut Arc<M::Graph>,
    shared: &Arc<Shared<M>>,
    st: &mut St<M>,
    dead: &[NodeId],
    resume_iter: u64,
    pool: &WorkerPool,
) -> bool {
    if matches!(shared.cfg.ft, FtMode::None) {
        panic!("node failure injected with fault tolerance disabled");
    }
    if dead.contains(&ctx.id()) {
        // The detector fenced *us* — from the cluster's point of view this
        // node is dead and a recovery episode for it is already under way
        // elsewhere. Exit like a crash; do not fight the fence.
        return true;
    }
    let undo: Undo<M> = Undo::capture(&**lg, st);
    let mut episode: Vec<NodeId> = dead.to_vec();
    episode.sort_unstable();
    episode.dedup();
    let mut counters = RecoveryCounters::default();
    let mut fence_time = Duration::ZERO;
    loop {
        counters.attempts += 1;
        let attempt = match shared.cfg.ft {
            FtMode::None => unreachable!(),
            FtMode::Checkpoint { .. } => {
                ckpt_recover_survivor(ctx, lg, shared, st, &episode, resume_iter, pool)
            }
            FtMode::Replication {
                recovery: RecoveryStrategy::Rebirth,
                ..
            } => rebirth_survivor(ctx, lg, shared, st, &episode, resume_iter, pool),
            FtMode::Replication {
                recovery: RecoveryStrategy::Migration,
                ..
            } => migrate(
                ctx,
                lg,
                shared,
                st,
                &episode,
                resume_iter,
                "migration",
                pool,
            ),
        };
        match attempt {
            Ok(mut report) => {
                report.counters = counters;
                report.phases.record("fence", fence_time);
                st.recoveries.push(report);
                shared.model.after_recovery(graph_mut(lg));
                return false;
            }
            Err(Abort::Crashed) => return true,
            Err(Abort::Failures(new_dead)) => {
                counters.aborts += 1;
                for n in new_dead {
                    if !episode.contains(&n) {
                        episode.push(n);
                    }
                }
                episode.sort_unstable();
                undo.restore(graph_mut(lg), st);
                // The aborted attempt may have re-persisted load-time DFS
                // state (edge-ckpt files) from a since-reverted graph;
                // re-derive it from the restored one.
                shared.model.on_load(&**lg, shared);
                let sw = Stopwatch::start();
                let fenced_out = abort_fence(ctx, st, &mut episode);
                fence_time += sw.elapsed();
                if fenced_out {
                    return true;
                }
            }
        }
    }
}

/// Re-synchronises the survivors after an aborted attempt: discard every
/// message belonging to it (stash and queue), then loop barriers until one
/// completes clean. A barrier that reports further failures — including the
/// suicide marks of standbys dispatched for the aborted attempt — unions
/// them into the episode and tries again. All survivors observe identical
/// barrier outcomes, so they leave the fence with identical episodes.
/// Returns `true` when *this node* was fenced out mid-fence (its own ID in
/// a failure list): the caller must exit like a crashed node.
fn abort_fence<T: Send + 'static>(
    ctx: &NodeCtx<T>,
    st: &mut crate::rt::NodeState<T>,
    episode: &mut Vec<NodeId>,
) -> bool {
    st.stash.clear();
    loop {
        drop(ctx.drain());
        match ctx.enter_barrier() {
            BarrierOutcome::Clean => return false,
            BarrierOutcome::Failed(list) if list.contains(&ctx.id()) => return true,
            BarrierOutcome::Failed(list) => {
                for n in list {
                    if !episode.contains(&n) {
                        episode.push(n);
                    }
                }
                episode.sort_unstable();
            }
        }
    }
}

/// The leader's half of the standby decision: if the pool can cover the
/// whole episode, dispatch one standby per crashed identity (all or none —
/// partial dispatch would leave survivors and newbies disagreeing about the
/// protocol shape) and vote 1 into the decision barrier.
fn dispatch_vote<T: Send + 'static>(
    ctx: &NodeCtx<T>,
    st: &crate::rt::NodeState<T>,
    dead: &[NodeId],
) -> u64 {
    if ctx.id() != st.leader() {
        return 0;
    }
    let cluster = ctx.cluster();
    if cluster.coordinator().standbys_available() < dead.len() {
        return 0;
    }
    for &d in dead {
        let dispatched = cluster.dispatch_standby(d);
        debug_assert!(dispatched, "standby pool shrank under the leader");
    }
    1
}

// --------------------------------------------------------------------------
// Rebirth (§5.1)
// --------------------------------------------------------------------------

/// Classifies one position for the rebirth reload scan, appending recovery
/// entries to the per-crashed-node batches (`out` is indexed like `dead`).
/// Pure reads — runs from any worker thread; merging chunks in submission
/// order reproduces the serial ascending-position scan exactly.
#[allow(clippy::too_many_arguments)]
fn scan_position<M: ComputeModel>(
    lg: &M::Graph,
    shared: &Shared<M>,
    dead: &[NodeId],
    alive: &[bool],
    me: NodeId,
    pos: u32,
    out: &mut [Vec<M::Entry>],
    promoted: &mut Vec<Vid>,
) {
    match lg.kind(pos) {
        CopyKind::Master => {
            let meta = lg
                .meta(pos)
                .unwrap_or_else(|| panic!("master {} has no full state", lg.vid(pos)));
            for (i, &d) in dead.iter().enumerate() {
                if let Some(rpos) = meta.replica_position_on(d) {
                    let kind = if meta.mirror_nodes().contains(&d) {
                        CopyKind::Mirror
                    } else {
                        CopyKind::Replica
                    };
                    out[i].push(shared.model.replica_entry(lg, pos, d, rpos, kind));
                }
            }
        }
        CopyKind::Mirror => {
            let master = lg.master_node(pos);
            let Some(mi) = dead.iter().position(|&d| d == master) else {
                return;
            };
            let meta = lg
                .meta(pos)
                .unwrap_or_else(|| panic!("mirror {} has no full state", lg.vid(pos)));
            if responsible_mirror(meta, alive) != Some(me) {
                return;
            }
            // Recover the master at its original position...
            out[mi].push(shared.model.master_entry(lg, pos));
            promoted.push(lg.vid(pos));
            // ...and, under multiple failures, any of its replicas lost
            // on *other* crashed nodes.
            for (i, &d) in dead.iter().enumerate() {
                if d == master {
                    continue;
                }
                if let Some(rpos) = meta.replica_position_on(d) {
                    let kind = if meta.mirror_nodes().contains(&d) {
                        CopyKind::Mirror
                    } else {
                        CopyKind::Replica
                    };
                    out[i].push(shared.model.replica_entry(lg, pos, d, rpos, kind));
                }
            }
        }
        CopyKind::Replica => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn rebirth_survivor<M: ComputeModel>(
    ctx: &Ctx<M>,
    lg: &mut Arc<M::Graph>,
    shared: &Arc<Shared<M>>,
    st: &mut St<M>,
    dead: &[NodeId],
    resume_iter: u64,
    pool: &WorkerPool,
) -> Attempt<RecoveryReport> {
    let me = ctx.id();
    let survivors = st.mark_dead(dead);
    let num_survivors = survivors.len() as u32;

    // Decision barrier (doubles as the newbies' membership barrier): the
    // leader dispatches hot standbys for the whole episode — before
    // entering, so the barrier cannot complete without the newbies — and
    // announces the outcome as a vote. An empty pool degrades to Migration
    // onto the survivors instead of wedging the cluster.
    let vote = dispatch_vote(ctx, st, dead);
    if barrier_sum_ok(ctx, vote)? == 0 {
        return migrate(
            ctx,
            lg,
            shared,
            st,
            dead,
            resume_iter,
            "rebirth→migration",
            pool,
        );
    }
    fail_here(ctx, shared, resume_iter, FailPoint::RebirthReload)?;

    // Reloading (§5.1.1): scan local masters and mirrors, build one batch
    // per crashed node. The responsible mirror (first surviving node in
    // mirror-ID order) recovers the master; every master recovers its own
    // lost replicas. The scan is pure reads over a stable failure set, so
    // it fans out in position chunks; chunks merge in submission order,
    // keeping every batch in the serial ascending-position order.
    let mut phases = PhaseTimes::new();
    let sw = Stopwatch::start();
    let dead_v: Arc<Vec<NodeId>> = Arc::new(dead.to_vec());
    let alive_v: Arc<Vec<bool>> = Arc::new(st.alive.clone());
    let jobs = chunk_ranges(lg.len(), pool.threads())
        .into_iter()
        .map(|r| {
            let lg = Arc::clone(lg);
            let shared = Arc::clone(shared);
            let dead = Arc::clone(&dead_v);
            let alive = Arc::clone(&alive_v);
            Box::new(move || {
                let mut out: Vec<Vec<M::Entry>> = dead.iter().map(|_| Vec::new()).collect();
                let mut promoted = Vec::new();
                for pos in r.start as u32..r.end as u32 {
                    scan_position::<M>(
                        &lg,
                        &shared,
                        &dead,
                        &alive,
                        me,
                        pos,
                        &mut out,
                        &mut promoted,
                    );
                }
                (out, promoted)
            }) as Box<dyn FnOnce() -> ScanChunk<M> + Send>
        })
        .collect();
    let mut batches: Vec<Vec<M::Entry>> = dead.iter().map(|_| Vec::new()).collect();
    let mut promoted: Vec<Vid> = Vec::new();
    for (chunk, promo) in pool.dispatch(jobs) {
        for (b, c) in batches.iter_mut().zip(chunk) {
            b.extend(c);
        }
        promoted.extend(promo);
    }
    let mut recovered = 0u64;
    let mut recovered_edges = 0u64;
    let mut comm = CommStats::default();
    // Every crashed node gets a batch, even an empty one — the newbie
    // counts `num_survivors` batches before it considers itself reloaded.
    for (i, entries) in batches.into_iter().enumerate() {
        let d = dead[i];
        recovered += entries.len() as u64;
        recovered_edges += entries
            .iter()
            .map(|e| shared.model.entry_edges(e))
            .sum::<u64>();
        let bytes: u64 = entries
            .iter()
            .map(|e| shared.model.entry_wire_bytes(e))
            .sum();
        comm.record(1, bytes);
        ctx.send_kind(
            d,
            ProtoMsg::Rebirth(Box::new(RebirthBatch {
                resume_iter,
                num_survivors,
                entries,
            })),
            bytes,
            CommKind::Recovery,
        );
    }
    let reload = sw.elapsed();
    phases.record("reload", reload);
    let sw = Stopwatch::start();
    barrier_ok(ctx)?;
    phases.record("fence", sw.elapsed());

    // Membership restored: the newbies carry the crashed identities.
    for d in dead {
        st.alive[d.index()] = true;
    }
    promoted.sort_unstable();
    let mut contacted = dead.to_vec();
    contacted.sort_unstable();
    Ok(RecoveryReport {
        strategy: "rebirth",
        failed_nodes: dead.len(),
        reload,
        reconstruct: Duration::ZERO,
        replay: Duration::ZERO,
        vertices_recovered: recovered,
        edges_recovered: recovered_edges,
        comm,
        promoted,
        contacted,
        counters: RecoveryCounters::default(),
        phases,
        suspicion: suspicion_now(ctx),
    })
}

/// A newbie reconstructing a crashed identity: receive one batch from every
/// survivor (placement is position-addressed, so reconstruction happens on
/// the fly, §5.1.2), reload any model-specific extra state, validate, and
/// replay (§5.1.3). Replay runs the model's fan-out on the newbie's own
/// worker pool (the graph travels behind an `Arc` that is uniquely held
/// again once the replay's chunks are drained).
///
/// Returns `None` when the attempt aborted: the newbie has no pre-episode
/// state to restore, so it crashes itself (suicide-on-abort) and the next
/// attempt consumes a fresh standby. It detects aborts two ways — a failed
/// barrier, or (while blocked waiting for batches a crashed survivor will
/// never send) the coordinator reporting an unrecovered failure, upon which
/// it joins the survivors' next barrier to observe the failure officially.
pub(crate) fn rebirth_newbie<M: ComputeModel>(
    ctx: &Ctx<M>,
    shared: &Arc<Shared<M>>,
    st: &mut St<M>,
    pool: &WorkerPool,
) -> Option<M::Graph> {
    let me = ctx.id();
    // Membership barrier (the survivors' decision barrier).
    if let BarrierOutcome::Failed(_) = ctx.enter_barrier() {
        ctx.crash();
        return None;
    }

    let mut phases = PhaseTimes::new();
    let sw = Stopwatch::start();
    let mut lg = shared.model.empty_graph(me);
    let mut got = 0u32;
    let mut expected: Option<u32> = None;
    let mut resume_iter = 0u64;
    let mut first_batch = true;
    let deadline = Instant::now() + RECOVERY_PATIENCE;
    while expected.is_none_or(|e| got < e) {
        let Some(env) = ctx.recv_timeout(Duration::from_millis(1)) else {
            if ctx.cluster().coordinator().has_unrecovered_failure() {
                // A survivor crashed mid-attempt; its batch will never
                // arrive. Enter the barrier the survivors are converging on
                // (it must report the failure) and abort with them.
                ctx.enter_barrier();
                ctx.crash();
                return None;
            }
            assert!(
                Instant::now() < deadline,
                "rebirth batch from survivor (recovery wedged)"
            );
            continue;
        };
        match env.msg {
            ProtoMsg::Rebirth(batch) => {
                expected = Some(batch.num_survivors);
                resume_iter = batch.resume_iter;
                got += 1;
                for e in batch.entries {
                    shared.model.insert_entry(&mut lg, e);
                }
                if first_batch {
                    first_batch = false;
                    if shared
                        .injector
                        .should_fail(me, resume_iter, FailPoint::RebirthReload)
                    {
                        ctx.crash();
                        return None;
                    }
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    shared.model.rebirth_reload_extra(&mut lg, shared);
    let reload = sw.elapsed();
    phases.record("reload", reload);

    if shared
        .injector
        .should_fail(me, resume_iter, FailPoint::RebirthReconstruct)
    {
        ctx.crash();
        return None;
    }

    // Reconstruction is implicit; validate the rebuilt layout, then run the
    // model's replay (activation fix-ups for the sparse engine; the dense
    // engine's next apply refreshes everything, so its replay is zero).
    let mut sw = Stopwatch::start();
    shared.model.validate(&lg);
    let reconstruct = sw.lap();
    phases.record("reconstruct", reconstruct);
    if shared
        .injector
        .should_fail(me, resume_iter, FailPoint::RebirthReplay)
    {
        ctx.crash();
        return None;
    }
    let mut lg = Arc::new(lg);
    let replay = if shared
        .model
        .rebirth_replay(&mut lg, shared, resume_iter, pool)
    {
        sw.lap()
    } else {
        Duration::ZERO
    };
    phases.record("replay", replay);

    let (vertices, edges) = shared.model.graph_stats(&lg);
    st.iter = resume_iter;
    // Reconstruction barrier: only a clean outcome makes the rebirth real.
    let sw = Stopwatch::start();
    if let BarrierOutcome::Failed(_) = ctx.enter_barrier() {
        ctx.crash();
        return None;
    }
    phases.record("fence", sw.elapsed());
    st.recoveries.push(RecoveryReport {
        strategy: "rebirth",
        failed_nodes: 1,
        reload,
        reconstruct,
        replay,
        vertices_recovered: vertices,
        edges_recovered: edges,
        comm: CommStats::default(),
        promoted: Vec::new(),
        contacted: Vec::new(),
        counters: RecoveryCounters {
            attempts: 1,
            aborts: 0,
        },
        phases,
        suspicion: suspicion_now(ctx),
    });
    let lg =
        Arc::try_unwrap(lg).unwrap_or_else(|_| panic!("newbie graph still shared by pool workers"));
    Some(lg)
}

// --------------------------------------------------------------------------
// Migration (§5.2): eight barrier-separated rounds
// --------------------------------------------------------------------------

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn migrate<M: ComputeModel>(
    ctx: &Ctx<M>,
    lg: &mut Arc<M::Graph>,
    shared: &Arc<Shared<M>>,
    st: &mut St<M>,
    dead: &[NodeId],
    resume_iter: u64,
    strategy: &'static str,
    pool: &WorkerPool,
) -> Attempt<RecoveryReport> {
    let me = ctx.id();
    let survivors = st.mark_dead(dead);
    let others: Vec<NodeId> = survivors.iter().copied().filter(|&n| n != me).collect();
    let tolerance = match shared.cfg.ft {
        FtMode::Replication { tolerance, .. } => tolerance,
        _ => unreachable!("migrate requires replication FT"),
    };
    let mut mig: Mig<M::MigExtra> = Mig::default();
    let mut phases = PhaseTimes::new();
    let mut sw_round = Stopwatch::start();
    let sw_total = Stopwatch::start();

    // ---- R1: promote local mirrors whose master died (the responsible
    //      mirror wins), purge crashed locations, announce promotions.
    //      Identification is a pure scan of the pre-round graph, so it fans
    //      out in position chunks; the mutations replay the merged hit
    //      lists on the protocol thread in ascending position order —
    //      exactly the serial single-pass order (a position is classified
    //      once, against its pre-round state, in both versions).
    fail_here(ctx, shared, resume_iter, FailPoint::MigrationRound(1))?;
    let dead_v: Arc<Vec<NodeId>> = Arc::new(dead.to_vec());
    let alive_v: Arc<Vec<bool>> = Arc::new(st.alive.clone());
    let jobs = chunk_ranges(lg.len(), pool.threads())
        .into_iter()
        .map(|r| {
            let lg = Arc::clone(lg);
            let dead = Arc::clone(&dead_v);
            let alive = Arc::clone(&alive_v);
            Box::new(move || {
                let mut promos: Vec<u32> = Vec::new();
                let mut purges: Vec<u32> = Vec::new();
                for pos in r.start as u32..r.end as u32 {
                    match lg.kind(pos) {
                        CopyKind::Mirror if dead.contains(&lg.master_node(pos)) => {
                            let meta = lg.meta(pos).unwrap_or_else(|| {
                                panic!("mirror {} has no full state", lg.vid(pos))
                            });
                            if responsible_mirror(meta, &alive) == Some(me) {
                                promos.push(pos);
                            }
                        }
                        CopyKind::Master => {
                            let meta = lg.meta(pos).unwrap_or_else(|| {
                                panic!("master {} has no full state", lg.vid(pos))
                            });
                            // Equivalent to the serial before/after length
                            // check: purging changes the tables iff some
                            // crashed node appears in them.
                            if dead.iter().any(|d| {
                                meta.replica_nodes().contains(d) || meta.mirror_nodes().contains(d)
                            }) {
                                purges.push(pos);
                            }
                        }
                        _ => {}
                    }
                }
                (promos, purges)
            }) as Box<dyn FnOnce() -> (Vec<u32>, Vec<u32>) + Send>
        })
        .collect();
    let mut promo_pos: Vec<u32> = Vec::new();
    let mut purge_pos: Vec<u32> = Vec::new();
    for (p, q) in pool.dispatch(jobs) {
        promo_pos.extend(p);
        purge_pos.extend(q);
    }
    let mut promotions: Vec<Promotion> = Vec::new();
    let g = graph_mut(lg);
    for pos in promo_pos {
        let vid = g.vid(pos);
        let old_node = g.master_node(pos);
        let old_pos = g
            .meta(pos)
            .unwrap_or_else(|| panic!("mirror {vid} has no full state"))
            .master_pos();
        g.set_kind(pos, CopyKind::Master);
        g.set_master_node(pos, me);
        let meta = g
            .meta_mut(pos)
            .unwrap_or_else(|| panic!("promoted mirror {vid} at position {pos} has no full state"));
        meta.set_master_pos(pos);
        meta.purge_node(me);
        for &d in dead {
            meta.purge_node(d);
        }
        shared.model.on_promote(g, pos, &mut mig);
        promotions.push(Promotion {
            vid,
            new_master: me,
            new_pos: pos,
            old_node,
            old_pos,
        });
        mig.dirty_masters.insert(pos);
        mig.promoted.push(vid);
        st.overlay.insert(vid, me);
        mig.recovered += 1;
    }
    for pos in purge_pos {
        // Purge crashed replica locations from the location tables.
        let vid = g.vid(pos);
        let meta = g
            .meta_mut(pos)
            .unwrap_or_else(|| panic!("master {vid} has no full state"));
        for &d in dead {
            meta.purge_node(d);
        }
        mig.dirty_masters.insert(pos);
    }
    for &n in &others {
        let bytes = (promotions.len() * 20) as u64;
        mig.comm.record(1, bytes);
        ctx.send_kind(
            n,
            ProtoMsg::Promote(promotions.clone()),
            bytes,
            CommKind::Recovery,
        );
    }
    barrier_ok(ctx)?;
    phases.record("migration_round1", sw_round.lap());

    // ---- R2: apply promotions everywhere; let the model fix its location
    //      tables and compute the replica requests it must send.
    fail_here(ctx, shared, resume_iter, FailPoint::MigrationRound(2))?;
    let mut promo_by_old: HashMap<(NodeId, u32), Promotion> = HashMap::new();
    let mut all_promos: Vec<Promotion> = promotions.clone();
    for env in round_msgs::<M>(ctx, st) {
        match env.msg {
            ProtoMsg::Promote(batch) => all_promos.extend(batch),
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    let g = graph_mut(lg);
    for p in &all_promos {
        promo_by_old.insert((p.old_node, p.old_pos), *p);
        st.overlay.insert(p.vid, p.new_master);
        if p.new_master == me {
            continue; // own promotions already fixed in R1
        }
        if let Some(pos) = g.position(p.vid) {
            g.set_master_node(pos, p.new_master);
            if let Some(meta) = g.meta_mut(pos) {
                meta.set_master_pos(p.new_pos);
                for &d in dead {
                    meta.purge_node(d);
                }
                meta.purge_node(p.new_master);
            }
        }
    }
    let menv = MigEnv {
        dead,
        me,
        promotions: &promotions,
        promo_by_old: &promo_by_old,
    };
    let mut requests = shared
        .model
        .migration_requests(g, shared, st, &mut mig, &menv);
    for &n in &others {
        let req = requests.remove(&n).unwrap_or_default();
        let bytes = (req.len() * 4) as u64;
        mig.comm.record(1, bytes);
        ctx.send_kind(n, ProtoMsg::ReplicaRequest(req), bytes, CommKind::Recovery);
    }
    barrier_ok(ctx)?;
    phases.record("migration_round2", sw_round.lap());

    // ---- R3: grant requested replicas.
    fail_here(ctx, shared, resume_iter, FailPoint::MigrationRound(3))?;
    let mut grants: HashMap<NodeId, Vec<ReplicaGrant<M::Value>>> = HashMap::new();
    let g = graph_mut(lg);
    for env in round_msgs::<M>(ctx, st) {
        match env.msg {
            ProtoMsg::ReplicaRequest(req) => {
                for vid in req {
                    let pos = g
                        .position(vid)
                        .unwrap_or_else(|| panic!("request for {vid} but no copy on {me}"));
                    debug_assert!(g.is_master(pos), "replica request routed to non-master");
                    grants.entry(env.from).or_default().push(ReplicaGrant {
                        vid,
                        value: g.value(pos).clone(),
                        last_activate: shared.model.scatter_bit(g, pos),
                        master_node: me,
                    });
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    for &n in &others {
        let gr = grants.remove(&n).unwrap_or_default();
        let bytes: u64 = gr
            .iter()
            .map(|x| 16 + shared.model.value_wire_bytes(&x.value) as u64)
            .sum();
        mig.comm.record(1, bytes);
        ctx.send_kind(n, ProtoMsg::ReplicaGrant(gr), bytes, CommKind::Recovery);
    }
    barrier_ok(ctx)?;
    phases.record("migration_round3", sw_round.lap());

    // ---- R4: place granted replicas, let the model wire edges (promoted
    //      masters' in-edges / adopted edge-ckpt edges), report placements.
    fail_here(ctx, shared, resume_iter, FailPoint::MigrationRound(4))?;
    let mut placements: HashMap<NodeId, Vec<(Vid, u32)>> = HashMap::new();
    let g = graph_mut(lg);
    // Placement appends to the local graph, and those positions later feed
    // the delta-encoded position columns of sync frames — so the order must
    // not depend on which granting node's message arrived first. Collect
    // every grant, then place in vid order.
    let mut grants: Vec<ReplicaGrant<M::Value>> = Vec::new();
    for env in round_msgs::<M>(ctx, st) {
        match env.msg {
            ProtoMsg::ReplicaGrant(gs) => grants.extend(gs),
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    grants.sort_unstable_by_key(|gr| gr.vid);
    for gr in grants {
        debug_assert!(
            g.position(gr.vid).is_none(),
            "duplicate grant for {}",
            gr.vid
        );
        let vid = gr.vid;
        let master_node = gr.master_node;
        let pos = shared.model.place_granted(g, gr);
        placements.entry(master_node).or_default().push((vid, pos));
        mig.recovered += 1;
    }
    shared.model.migration_wire(g, &mut mig, resume_iter);
    for &n in &others {
        let p = placements.remove(&n).unwrap_or_default();
        let bytes = (p.len() * 8) as u64;
        mig.comm.record(1, bytes);
        ctx.send_kind(n, ProtoMsg::ReplicaPlaced(p), bytes, CommKind::Recovery);
    }
    barrier_ok(ctx)?;
    phases.record("migration_round4", sw_round.lap());

    // ---- R5: record placements; restore the fault-tolerance level by
    //      designating replacement mirrors (§5.2.1), creating fresh FT
    //      replicas where no replica is available. This round stays serial:
    //      each designation reads and bumps the least-assigned counters
    //      (`st.mirror_assign`), so later choices depend on earlier ones.
    fail_here(ctx, shared, resume_iter, FailPoint::MigrationRound(5))?;
    let g = graph_mut(lg);
    for env in round_msgs::<M>(ctx, st) {
        match env.msg {
            ProtoMsg::ReplicaPlaced(ps) => {
                for (vid, pos) in ps {
                    let mpos = g.position(vid).expect("placement for unknown master");
                    debug_assert!(g.is_master(mpos));
                    g.meta_mut(mpos)
                        .unwrap_or_else(|| {
                            panic!("master {vid} has no full state to register a replica")
                        })
                        .register_replica(env.from, pos);
                    mig.dirty_masters.insert(mpos);
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    // The FT level cannot exceed the surviving cluster's capacity: each
    // mirror needs a distinct node other than the master's.
    let restorable = tolerance.min(survivors.len().saturating_sub(1));
    let mut mirror_updates: MirrorUpdates<M> = HashMap::new();
    for pos in 0..g.len() as u32 {
        if !g.is_master(pos) {
            continue;
        }
        loop {
            let vid = g.vid(pos);
            let meta = g
                .meta(pos)
                .unwrap_or_else(|| panic!("master {vid} has no full state"));
            if meta.mirror_nodes().len() >= restorable {
                break;
            }
            // Prefer upgrading an existing replica; otherwise create a new
            // FT replica on the least-assigned survivor.
            let candidate = meta
                .replica_nodes()
                .iter()
                .copied()
                .filter(|n| !meta.mirror_nodes().contains(n))
                .min_by_key(|n| (st.mirror_assign[n.index()], n.index()));
            let (target, fresh) = match candidate {
                Some(n) => (n, false),
                None => {
                    let n = survivors
                        .iter()
                        .copied()
                        .filter(|&n| n != me && !meta.replica_nodes().contains(&n))
                        .min_by_key(|n| (st.mirror_assign[n.index()], n.index()))
                        .expect("enough survivors to restore the FT level");
                    (n, true)
                }
            };
            st.mirror_assign[target.index()] += 1;
            let scatter = shared.model.scatter_bit(g, pos);
            let meta = g
                .meta_mut(pos)
                .unwrap_or_else(|| panic!("master {vid} has no full state to designate a mirror"));
            meta.add_mirror(target);
            let boxed = Box::new(meta.clone());
            mirror_updates
                .entry(target)
                .or_default()
                .push(MirrorUpdate {
                    vid,
                    meta: boxed,
                    // Position is reported back in R6 for fresh replicas.
                    value: fresh.then(|| g.value(pos).clone()),
                    last_activate: scatter,
                    master_node: me,
                });
            mig.dirty_masters.insert(pos);
        }
    }
    for &n in &others {
        let ups = mirror_updates.remove(&n).unwrap_or_default();
        let bytes = mirror_frame_bytes(shared, &ups);
        mig.comm.record(1, bytes);
        ctx.send_kind(n, ProtoMsg::MirrorUpdate(ups), bytes, CommKind::Recovery);
    }
    barrier_ok(ctx)?;
    phases.record("migration_round5", sw_round.lap());

    // ---- R6: adopt mirror designations; report fresh FT-replica positions.
    fail_here(ctx, shared, resume_iter, FailPoint::MigrationRound(6))?;
    let mut fresh_placements: HashMap<NodeId, Vec<(Vid, u32)>> = HashMap::new();
    let g = graph_mut(lg);
    // Same arrival-order hazard as R4: fresh mirrors append to the local
    // graph, so collect them across senders and place in vid order.
    let mut fresh: Vec<MirrorUpdate<M::Value, M::Meta>> = Vec::new();
    for env in round_msgs::<M>(ctx, st) {
        match env.msg {
            ProtoMsg::MirrorUpdate(ups) => {
                for u in ups {
                    match g.position(u.vid) {
                        Some(pos) => {
                            g.set_kind(pos, CopyKind::Mirror);
                            g.set_meta(pos, u.meta);
                            g.set_master_node(pos, u.master_node);
                        }
                        None => fresh.push(u),
                    }
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    fresh.sort_unstable_by_key(|u| u.vid);
    for u in fresh {
        let vid = u.vid;
        let master_node = u.master_node;
        let pos = shared.model.place_fresh_mirror(g, u);
        fresh_placements
            .entry(master_node)
            .or_default()
            .push((vid, pos));
    }
    for &n in &others {
        let p = fresh_placements.remove(&n).unwrap_or_default();
        let bytes = (p.len() * 8) as u64;
        mig.comm.record(1, bytes);
        ctx.send_kind(n, ProtoMsg::ReplicaPlaced(p), bytes, CommKind::Recovery);
    }
    barrier_ok(ctx)?;
    phases.record("migration_round6", sw_round.lap());

    // ---- R7: register fresh placements; push the final full state to every
    //      mirror of each dirty master. Building the refresh batches clones
    //      whole metas — the bulkiest per-vertex work in the protocol — so
    //      it fans out over the sorted dirty set (sorting also replaces the
    //      serial version's arbitrary hash order; each vid carries at most
    //      one refresh per destination, so batch order within a destination
    //      is unobservable).
    fail_here(ctx, shared, resume_iter, FailPoint::MigrationRound(7))?;
    {
        let g = graph_mut(lg);
        for env in round_msgs::<M>(ctx, st) {
            match env.msg {
                ProtoMsg::ReplicaPlaced(ps) => {
                    for (vid, pos) in ps {
                        let mpos = g.position(vid).expect("placement for unknown master");
                        g.meta_mut(mpos)
                            .unwrap_or_else(|| {
                                panic!("master {vid} has no full state to register a replica")
                            })
                            .register_replica(env.from, pos);
                        mig.dirty_masters.insert(mpos);
                    }
                }
                other => st.stash.push(Envelope {
                    from: env.from,
                    msg: other,
                }),
            }
        }
    }
    let mut dirty: Vec<u32> = mig.dirty_masters.iter().copied().collect();
    dirty.sort_unstable();
    let dirty: Arc<Vec<u32>> = Arc::new(dirty);
    let jobs = chunk_ranges(dirty.len(), pool.threads())
        .into_iter()
        .map(|r| {
            let lg = Arc::clone(lg);
            let shared = Arc::clone(shared);
            let dirty = Arc::clone(&dirty);
            Box::new(move || {
                let mut ups: Vec<Refresh<M>> = Vec::new();
                for i in r {
                    let pos = dirty[i];
                    if !lg.is_master(pos) {
                        continue;
                    }
                    let meta = lg
                        .meta(pos)
                        .unwrap_or_else(|| panic!("master {} has no full state", lg.vid(pos)));
                    for &m in meta.mirror_nodes() {
                        ups.push((
                            m,
                            MirrorUpdate {
                                vid: lg.vid(pos),
                                meta: Box::new(meta.clone()),
                                value: None,
                                last_activate: shared.model.scatter_bit(&lg, pos),
                                master_node: me,
                            },
                        ));
                    }
                }
                ups
            }) as Box<dyn FnOnce() -> Vec<Refresh<M>> + Send>
        })
        .collect();
    let mut refreshes: MirrorUpdates<M> = HashMap::new();
    for chunk in pool.dispatch(jobs) {
        for (n, u) in chunk {
            refreshes.entry(n).or_default().push(u);
        }
    }
    for &n in &others {
        let ups = refreshes.remove(&n).unwrap_or_default();
        let bytes = mirror_frame_bytes(shared, &ups);
        mig.comm.record(1, bytes);
        ctx.send_kind(n, ProtoMsg::MirrorUpdate(ups), bytes, CommKind::Recovery);
    }
    barrier_ok(ctx)?;
    phases.record("migration_round7", sw_round.lap());

    // ---- R8: adopt refreshed metas; let the model re-persist invalidated
    //      state; leader acknowledges the recovery.
    fail_here(ctx, shared, resume_iter, FailPoint::MigrationRound(8))?;
    let g = graph_mut(lg);
    for env in round_msgs::<M>(ctx, st) {
        match env.msg {
            ProtoMsg::MirrorUpdate(ups) => {
                for u in ups {
                    let pos = g.position(u.vid).expect("meta refresh for unknown copy");
                    debug_assert!(!g.is_master(pos), "meta refresh addressed to the master");
                    g.set_kind(pos, CopyKind::Mirror);
                    g.set_master_node(pos, u.master_node);
                    g.set_meta(pos, u.meta);
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    shared.model.migration_finish(g, shared, &mig);
    if me == st.leader() {
        for &d in dead {
            ctx.cluster().coordinator().ack_recovered(d);
        }
    }
    barrier_ok(ctx)?;
    phases.record("migration_round8", sw_round.lap());

    let Mig {
        recovered,
        edges_recovered,
        comm,
        mut promoted,
        ..
    } = mig;
    promoted.sort_unstable();
    Ok(RecoveryReport {
        strategy,
        failed_nodes: dead.len(),
        reload: sw_total.elapsed(),
        reconstruct: Duration::ZERO,
        replay: Duration::ZERO,
        vertices_recovered: recovered,
        edges_recovered,
        comm,
        promoted,
        contacted: others,
        counters: RecoveryCounters::default(),
        phases,
        suspicion: suspicion_now(ctx),
    })
}

// --------------------------------------------------------------------------
// Checkpoint recovery (§2.2-2.3)
// --------------------------------------------------------------------------

/// Rolls a survivor back to its newest recoverable snapshot state and
/// returns the iteration the graph now sits at.
///
/// Incremental mode rewinds to the initial state and applies the complete
/// snapshot chain (base full epoch + later deltas; see
/// [`epoch::recovery_chain`]). Full mode applies only the newest complete
/// epoch. When no complete epoch exists yet, recovery restarts from the
/// initial state — in both modes the masters then no longer hold their
/// last-shipped values, so the suppression filter's entries describe
/// nothing anymore and are cleared. A full snapshot restores masters only;
/// surviving replicas keep exactly the state our last syncs installed, so
/// the filter stays valid toward survivors and only the crashed
/// destinations are invalidated (their replacements are rebuilt from
/// snapshots — everything must be re-shipped there).
#[allow(clippy::too_many_arguments)]
fn ckpt_reload_survivor<M: ComputeModel>(
    lg: &mut Arc<M::Graph>,
    shared: &Arc<Shared<M>>,
    st: &mut St<M>,
    dead: &[NodeId],
    me: NodeId,
    incremental: bool,
    pool: &WorkerPool,
) -> u64 {
    let snap_iter = if incremental {
        let g = graph_mut(lg);
        shared.model.reset_to_initial(g, shared);
        st.sync_filter.clear();
        apply_snapshot_chain::<M>(g, shared, me, Some(pool))
    } else {
        match epoch::recovery_chain(&shared.dfs, M::PREFIX, me.raw()) {
            Err(_) => {
                shared.model.reset_to_initial(graph_mut(lg), shared);
                st.sync_filter.clear();
                0
            }
            Ok(chain) => {
                for &d in dead {
                    st.sync_filter.invalidate_dest(d);
                }
                // Full mode writes only full epochs, so the chain is the
                // newest complete epoch alone.
                let &(e, _) = chain.epochs.last().expect("recovery chain is never empty");
                let bytes = epoch::read_verified(&shared.dfs, M::PREFIX, e, me.raw())
                    .expect("rostered part verified");
                shared.model.apply_snapshot(graph_mut(lg), &bytes)
            }
        }
    };
    st.dirty.clear();
    st.last_snapshot_iter = snap_iter;
    snap_iter
}

#[allow(clippy::too_many_arguments)]
fn ckpt_recover_survivor<M: ComputeModel>(
    ctx: &Ctx<M>,
    lg: &mut Arc<M::Graph>,
    shared: &Arc<Shared<M>>,
    st: &mut St<M>,
    dead: &[NodeId],
    resume_iter: u64,
    pool: &WorkerPool,
) -> Attempt<RecoveryReport> {
    let me = ctx.id();
    let survivors = st.mark_dead(dead);

    // Decision barrier (doubles as the newbies' membership barrier). An
    // exhausted standby pool grafts the dead partitions' snapshots onto the
    // survivors instead of panicking.
    let vote = dispatch_vote(ctx, st, dead);
    if barrier_sum_ok(ctx, vote)? == 0 {
        return ckpt_fallback(ctx, lg, shared, st, dead, resume_iter, &survivors, pool);
    }
    fail_here(ctx, shared, resume_iter, FailPoint::RebirthReload)?;

    // Reload: every node (survivors too) rolls back to the newest *sealed,
    // roster-complete* epoch — a crash mid-checkpoint leaves a torn part
    // behind, and a torn epoch must never be loaded. For incremental mode,
    // roll back to the initial state plus the complete snapshot chain.
    let mut phases = PhaseTimes::new();
    let sw = Stopwatch::start();
    let incremental = matches!(
        shared.cfg.ft,
        FtMode::Checkpoint {
            incremental: true,
            ..
        }
    );
    let snap_iter = ckpt_reload_survivor(lg, shared, st, dead, me, incremental, pool);
    let reload = sw.elapsed();
    phases.record("reload", reload);
    let sw = Stopwatch::start();
    barrier_ok(ctx)?;
    phases.record("fence", sw.elapsed());

    // Reconstruct: replica values are not in snapshots; masters rebroadcast.
    let sw = Stopwatch::start();
    ckpt_full_sync(ctx, graph_mut(lg), shared, st)?;
    let reconstruct = sw.elapsed();
    phases.record("reconstruct", reconstruct);

    st.iter = snap_iter;
    st.replay_until = resume_iter;
    for d in dead {
        st.alive[d.index()] = true;
    }
    Ok(RecoveryReport {
        strategy: "checkpoint",
        failed_nodes: dead.len(),
        reload,
        reconstruct,
        replay: Duration::ZERO, // accumulated as lost iterations re-run
        vertices_recovered: lg.num_masters() as u64,
        edges_recovered: 0,
        comm: CommStats::default(),
        promoted: Vec::new(),
        contacted: Vec::new(),
        counters: RecoveryCounters::default(),
        phases,
        suspicion: suspicion_now(ctx),
    })
}

/// Checkpoint recovery without standbys: the survivors adopt the dead
/// partitions wholesale from the DFS. Three barrier-separated graft rounds
/// (reusing the Migration round-1..3 fail points), then the usual full-sync.
///
/// Round 1 — every survivor rolls back to the snapshot epoch; the
/// round-robin adopter of each dead partition reconstructs it from the dead
/// node's metadata snapshot plus its snapshot chain (exactly what a standby
/// would have done) and grafts it into its own graph via
/// [`ComputeModel::adopt_partition`]; promotions are announced. An adopter
/// of several partitions reconstructs them concurrently on the worker pool
/// (each reconstruction reads and decodes an independent dead graph); the
/// grafts themselves replay serially in partition order.
/// Round 2 — promotions are applied everywhere, adopted copies whose master
/// also died are re-pointed at the promoted location, and position-addressed
/// consumer tables are rewritten ([`ComputeModel::migration_requests`] with
/// an empty promotion set of our own — under checkpoint FT every adopted
/// master arrives complete, so no replica requests are generated).
/// Round 3 — replica placements are registered with their surviving
/// masters and the leader acknowledges the episode; the closing full-sync
/// then refreshes every (old and adopted) replica from its master's
/// rolled-back value. Finally each survivor re-persists its metadata
/// snapshot: its layout grew, and a *later* episode must be able to
/// reconstruct it including the adopted positions.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn ckpt_fallback<M: ComputeModel>(
    ctx: &Ctx<M>,
    lg: &mut Arc<M::Graph>,
    shared: &Arc<Shared<M>>,
    st: &mut St<M>,
    dead: &[NodeId],
    resume_iter: u64,
    survivors: &[NodeId],
    pool: &WorkerPool,
) -> Attempt<RecoveryReport> {
    let me = ctx.id();
    let others: Vec<NodeId> = survivors.iter().copied().filter(|&n| n != me).collect();
    let incremental = matches!(
        shared.cfg.ft,
        FtMode::Checkpoint {
            incremental: true,
            ..
        }
    );
    // Deterministic round-robin assignment of dead partitions to adopters.
    let my_partitions: Vec<NodeId> = dead
        .iter()
        .enumerate()
        .filter(|(i, _)| survivors[i % survivors.len()] == me)
        .map(|(_, &d)| d)
        .collect();
    let adopter = !my_partitions.is_empty();
    let mut mig: Mig<M::MigExtra> = Mig::default();
    let mut phases = PhaseTimes::new();
    let mut sw_round = Stopwatch::start();

    // ---- Round 1: roll back, graft assigned dead partitions, announce.
    fail_here(ctx, shared, resume_iter, FailPoint::MigrationRound(1))?;
    let sw = Stopwatch::start();
    let snap_iter = ckpt_reload_survivor(lg, shared, st, dead, me, incremental, pool);
    {
        // The dead nodes are gone for good: purge them from every
        // pre-existing master's replica tables (the adopters purge their
        // grafted masters' tables inside `adopt_partition`).
        let g = graph_mut(lg);
        for pos in 0..g.len() as u32 {
            if !g.is_master(pos) {
                continue;
            }
            let vid = g.vid(pos);
            let meta = g
                .meta_mut(pos)
                .unwrap_or_else(|| panic!("master {vid} has no full state"));
            for &d in dead {
                meta.purge_node(d);
            }
        }
    }
    let reload = sw.elapsed();
    phases.record("reload", reload);
    let sw = Stopwatch::start();
    let mut promotions: Vec<Promotion> = Vec::new();
    let mut placements: Vec<(NodeId, Vid, u32)> = Vec::new();
    let mut orphans: Vec<u32> = Vec::new();
    // Reconstructing a dead partition is self-contained DFS reads + decode;
    // fan the assigned partitions out, then graft serially in the same
    // deterministic order. Each job applies its own snapshot chain inline
    // (`pool: None` — a job must never dispatch onto the pool it runs on).
    let jobs = my_partitions
        .iter()
        .map(|&d| {
            let shared = Arc::clone(shared);
            Box::new(move || reconstruct_partition::<M>(&shared, d))
                as Box<dyn FnOnce() -> M::Graph + Send>
        })
        .collect();
    let dead_graphs: Vec<M::Graph> = pool.run(jobs);
    for (&d, dead_lg) in my_partitions.iter().zip(dead_graphs) {
        let adoption = shared
            .model
            .adopt_partition(graph_mut(lg), dead_lg, d, dead, &mut mig);
        for p in &adoption.promotions {
            st.overlay.insert(p.vid, p.new_master);
            mig.promoted.push(p.vid);
        }
        promotions.extend(adoption.promotions);
        placements.extend(adoption.placements);
        orphans.extend(adoption.orphans);
    }
    if adopter {
        // The graft grew (and rewrote) this node's layout: the filter's
        // position-keyed entries are meaningless now. Re-seeding re-ships
        // everything in the full sync, which the grafted copies need anyway.
        st.sync_filter.set_domain(lg.len() as u32);
        st.sync_filter.clear();
    }
    for &n in &others {
        let bytes = (promotions.len() * 20) as u64;
        mig.comm.record(1, bytes);
        ctx.send_kind(
            n,
            ProtoMsg::Promote(promotions.clone()),
            bytes,
            CommKind::Recovery,
        );
    }
    barrier_ok(ctx)?;
    phases.record("migration_round1", sw_round.lap());

    // ---- Round 2: apply promotions, resolve orphans, rewrite consumer
    //      tables, report replica placements to surviving masters.
    fail_here(ctx, shared, resume_iter, FailPoint::MigrationRound(2))?;
    let mut promo_by_old: HashMap<(NodeId, u32), Promotion> = HashMap::new();
    let mut promo_by_vid: HashMap<Vid, Promotion> = HashMap::new();
    let mut all_promos: Vec<Promotion> = promotions.clone();
    for env in round_msgs::<M>(ctx, st) {
        match env.msg {
            ProtoMsg::Promote(batch) => all_promos.extend(batch),
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    let g = graph_mut(lg);
    for p in &all_promos {
        promo_by_old.insert((p.old_node, p.old_pos), *p);
        promo_by_vid.insert(p.vid, *p);
        st.overlay.insert(p.vid, p.new_master);
        if p.new_master == me {
            continue; // own adoptions already mastered locally
        }
        if let Some(pos) = g.position(p.vid) {
            if !g.is_master(pos) {
                g.set_master_node(pos, p.new_master);
            }
        }
    }
    // Orphans: adopted replica copies whose master died too. If a later
    // graft of our own promoted the vertex here it is already a master;
    // otherwise point it at the promoted location and register there.
    for pos in orphans {
        if g.is_master(pos) {
            continue;
        }
        let vid = g.vid(pos);
        let p = promo_by_vid
            .get(&vid)
            .unwrap_or_else(|| panic!("orphaned copy of {vid} has no promotion"));
        debug_assert_ne!(
            p.new_master, me,
            "a local promotion must have upgraded the orphan in place"
        );
        g.set_master_node(pos, p.new_master);
        placements.push((p.new_master, vid, pos));
    }
    // Rewrite position-addressed consumer tables that still point at the
    // dead layouts. Under checkpoint FT the adopted partitions arrive
    // complete, so the models generate no replica requests here.
    let menv = MigEnv {
        dead,
        me,
        promotions: &[],
        promo_by_old: &promo_by_old,
    };
    let requests = shared
        .model
        .migration_requests(g, shared, st, &mut mig, &menv);
    debug_assert!(
        requests.values().all(Vec::is_empty),
        "checkpoint fallback must not need replica grants"
    );
    // Adoption grafted masters whose `active` bits came straight from the
    // snapshot; restore derived activation state before validating.
    shared.model.after_recovery(g);
    shared.model.validate(g);
    let mut placed: HashMap<NodeId, Vec<(Vid, u32)>> = HashMap::new();
    for (master, vid, pos) in placements {
        placed.entry(master).or_default().push((vid, pos));
    }
    for &n in &others {
        let p = placed.remove(&n).unwrap_or_default();
        let bytes = (p.len() * 8) as u64;
        mig.comm.record(1, bytes);
        ctx.send_kind(n, ProtoMsg::ReplicaPlaced(p), bytes, CommKind::Recovery);
    }
    barrier_ok(ctx)?;
    phases.record("migration_round2", sw_round.lap());

    // ---- Round 3: register placements; leader acknowledges; full-sync
    //      refreshes every replica (the first full-sync barrier closes this
    //      round).
    fail_here(ctx, shared, resume_iter, FailPoint::MigrationRound(3))?;
    let g = graph_mut(lg);
    for env in round_msgs::<M>(ctx, st) {
        match env.msg {
            ProtoMsg::ReplicaPlaced(ps) => {
                for (vid, pos) in ps {
                    let mpos = g.position(vid).expect("placement for unknown master");
                    debug_assert!(g.is_master(mpos));
                    g.meta_mut(mpos)
                        .unwrap_or_else(|| {
                            panic!("master {vid} has no full state to register a replica")
                        })
                        .register_replica(env.from, pos);
                }
            }
            other => st.stash.push(Envelope {
                from: env.from,
                msg: other,
            }),
        }
    }
    if me == st.leader() {
        for &d in dead {
            ctx.cluster().coordinator().ack_recovered(d);
        }
    }
    ckpt_full_sync(ctx, g, shared, st)?;
    // Re-persist the metadata snapshot: this node's layout changed, and any
    // later reconstruction of *this* node must include the adopted
    // positions. Placed after the last abortable barrier, so an aborted
    // attempt never leaves a revised meta behind.
    shared.dfs.write(
        &format!("{}/meta/{}", M::PREFIX, me.raw()),
        shared.model.encode_graph(g),
    );
    let reconstruct = sw.elapsed();
    phases.record("migration_round3", sw_round.lap());
    phases.record("reconstruct", reconstruct);

    st.iter = snap_iter;
    st.replay_until = resume_iter;
    mig.promoted.sort_unstable();
    Ok(RecoveryReport {
        strategy: "checkpoint→migration",
        failed_nodes: dead.len(),
        reload,
        reconstruct,
        replay: Duration::ZERO, // accumulated as lost iterations re-run
        vertices_recovered: mig.recovered,
        edges_recovered: mig.edges_recovered,
        comm: mig.comm,
        promoted: mig.promoted,
        contacted: others,
        counters: RecoveryCounters::default(),
        phases,
        suspicion: suspicion_now(ctx),
    })
}

/// Rebuilds a crashed node's partition from the DFS exactly as a checkpoint
/// standby would: the immutable topology from its metadata snapshot, then
/// its snapshot chain up to the newest complete epoch. Runs as a pool job
/// in the checkpoint fallback, so the chain is applied inline (`pool:
/// None`).
fn reconstruct_partition<M: ComputeModel>(shared: &Shared<M>, d: NodeId) -> M::Graph {
    let meta_bytes = shared
        .dfs
        .read(&format!("{}/meta/{}", M::PREFIX, d.raw()))
        .expect("metadata snapshot written at load");
    let mut dg = shared.model.decode_graph(&meta_bytes);
    apply_snapshot_chain::<M>(&mut dg, shared, d, None);
    dg
}

/// A standby reconstructing a crashed identity from the DFS: the immutable
/// topology from the metadata snapshot, then the data snapshot chain (its
/// epoch parts read concurrently on the newbie's worker pool).
///
/// Returns `None` when the attempt aborted (suicide-on-abort, as in
/// [`rebirth_newbie`] — every blocking point here is a barrier, so no
/// liveness poll is needed).
pub(crate) fn ckpt_newbie<M: ComputeModel>(
    ctx: &Ctx<M>,
    shared: &Arc<Shared<M>>,
    st: &mut St<M>,
    pool: &WorkerPool,
) -> Option<M::Graph> {
    let me = ctx.id();
    // Membership barrier (the survivors' decision barrier).
    if let BarrierOutcome::Failed(_) = ctx.enter_barrier() {
        ctx.crash();
        return None;
    }
    let mut phases = PhaseTimes::new();
    let sw = Stopwatch::start();
    let meta_bytes = shared
        .dfs
        .read(&format!("{}/meta/{}", M::PREFIX, me.raw()))
        .expect("metadata snapshot written at load");
    let mut lg = shared.model.decode_graph(&meta_bytes);
    let snap_iter = apply_snapshot_chain::<M>(&mut lg, shared, me, Some(pool));
    // The newbie does not know the episode's resume iteration (that lives
    // in the survivors' state); its reload fail point keys on the snapshot
    // epoch it reloaded to instead.
    if shared
        .injector
        .should_fail(me, snap_iter, FailPoint::RebirthReload)
    {
        ctx.crash();
        return None;
    }
    let reload = sw.elapsed();
    phases.record("reload", reload);
    let sw = Stopwatch::start();
    if let BarrierOutcome::Failed(_) = ctx.enter_barrier() {
        ctx.crash();
        return None;
    }
    phases.record("fence", sw.elapsed());

    let sw = Stopwatch::start();
    match ckpt_full_sync(ctx, &mut lg, shared, st) {
        Ok(()) => {}
        Err(_) => {
            ctx.crash();
            return None;
        }
    }
    let reconstruct = sw.elapsed();
    phases.record("reconstruct", reconstruct);

    let (vertices, edges) = shared.model.graph_stats(&lg);
    st.iter = snap_iter;
    st.last_snapshot_iter = snap_iter;
    st.recoveries.push(RecoveryReport {
        strategy: "checkpoint",
        failed_nodes: 1,
        reload,
        reconstruct,
        replay: Duration::ZERO,
        vertices_recovered: vertices,
        edges_recovered: edges,
        comm: CommStats::default(),
        promoted: Vec::new(),
        contacted: Vec::new(),
        counters: RecoveryCounters {
            attempts: 1,
            aborts: 0,
        },
        phases,
        suspicion: suspicion_now(ctx),
    });
    Some(lg)
}

/// Post-reload replica refresh: every master pushes its restored state to
/// all of its replicas (one full sync round with its own barriers).
///
/// Records already installed on a destination by our last regular syncs are
/// suppressed (surviving replicas were not rolled back — snapshots hold
/// masters only), which is where redundant-sync suppression pays off most:
/// only vertices that changed since the snapshot are re-shipped to
/// survivors. The round's barriers can abort like any other recovery
/// barrier; an aborted attempt restores the whole filter from its undo
/// snapshot, so the early `commit` here is safe.
fn ckpt_full_sync<M: ComputeModel>(
    ctx: &Ctx<M>,
    lg: &mut M::Graph,
    shared: &Shared<M>,
    st: &mut St<M>,
) -> Attempt<()> {
    let mut batches: HashMap<NodeId, Vec<VertexSync<M::Value>>> = HashMap::new();
    let mut suppressed = 0u64;
    for pos in 0..lg.len() as u32 {
        if !lg.is_master(pos) {
            continue;
        }
        let scatter = shared.model.scatter_bit(lg, pos);
        let staged = st.sync_filter.stage(pos, lg.value(pos), scatter);
        let meta = lg
            .meta(pos)
            .unwrap_or_else(|| panic!("master {} has no full state", lg.vid(pos)));
        for (&node, &rpos) in meta.replica_nodes().iter().zip(meta.replica_positions()) {
            if st.sync_filter.suppress(staged, node) {
                suppressed += 1;
                continue;
            }
            batches.entry(node).or_default().push(VertexSync {
                pos: rpos,
                value: lg.value(pos).clone(),
                activate: scatter,
            });
        }
    }
    st.sync_filter.commit();
    st.note_suppressed(suppressed);
    for (node, batch) in batches {
        // One columnar sync frame per destination: frame header plus
        // position-delta and value columns (full values — no delta base is
        // assumed across a recovery).
        let mut prev = 0u32;
        let mut bytes = crate::wire::sync_frame_overhead(batch.len() as u64);
        for s in &batch {
            bytes += crate::wire::sync_record_bytes(
                s.pos,
                prev,
                shared.model.value_wire_bytes(&s.value),
                None,
            );
            prev = s.pos;
        }
        ctx.send_kind(node, ProtoMsg::Sync(batch), bytes, CommKind::Recovery);
    }
    barrier_ok(ctx)?;
    let incoming = collect_syncs::<M>(ctx, st);
    shared.model.apply_full_sync(lg, incoming);
    barrier_ok(ctx)?;
    st.sync_filter.revalidate_all();
    Ok(())
}

/// Applies `node`'s parts of its recovery chain — the newest complete full
/// epoch plus every later complete delta epoch ([`epoch::recovery_chain`])
/// — in ascending order, returning the last applied iteration (0 when no
/// complete epoch exists). An ungrounded chain (deltas with no full base)
/// is grounded at the caller's initial state, which every caller has just
/// reset to or freshly decoded; see `recovery_chain`'s rewind argument for
/// why the deltas then cover everything since.
///
/// Part *reads* fan out on the worker pool when one is supplied — each
/// epoch part is an independent DFS read paying modelled latency, so
/// concurrent reads overlap it — while *application* stays serial and
/// in-order (deltas layer on their base). Callers that already run on a
/// pool worker (checkpoint-fallback partition reconstruction) pass `None`:
/// dispatching onto the bounded pool from inside one of its jobs could
/// deadlock.
fn apply_snapshot_chain<M: ComputeModel>(
    lg: &mut M::Graph,
    shared: &Shared<M>,
    node: NodeId,
    pool: Option<&WorkerPool>,
) -> u64 {
    let Ok(chain) = epoch::recovery_chain(&shared.dfs, M::PREFIX, node.raw()) else {
        return 0;
    };
    let reads: Vec<Result<Arc<Vec<u8>>, EpochError>> = match pool {
        Some(pool) => pool.run(
            chain
                .epochs
                .iter()
                .map(|&(e, _)| {
                    let dfs = shared.dfs.clone();
                    let n = node.raw();
                    Box::new(move || epoch::read_verified(&dfs, M::PREFIX, e, n))
                        as Box<dyn FnOnce() -> Result<Arc<Vec<u8>>, EpochError> + Send>
                })
                .collect(),
        ),
        None => chain
            .epochs
            .iter()
            .map(|&(e, _)| epoch::read_verified(&shared.dfs, M::PREFIX, e, node.raw()))
            .collect(),
    };
    let mut snap_iter = 0;
    for (&(_, kind), bytes) in chain.epochs.iter().zip(reads) {
        let bytes = bytes.expect("rostered part verified");
        snap_iter = match kind {
            EpochKind::Full => shared.model.apply_snapshot(lg, &bytes),
            EpochKind::Delta => shared.model.apply_snapshot_inc(lg, &bytes),
        };
    }
    snap_iter
}

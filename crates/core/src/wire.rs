//! Columnar batch wire frames.
//!
//! The scalar codec charged every sync record a fixed `pos:u32 flags:u8`
//! header next to its value; at millions of records per superstep the
//! headers rival the payloads. This module reframes the three batch-shaped
//! protocol messages — vertex syncs, gather contributions, mirror updates —
//! as **columnar frames**: one header per frame, then each field packed
//! contiguously across all records, with positions/vertex-IDs stored as
//! zigzag-varint deltas between consecutive records and per-record flags
//! packed two bits apiece into a bitmap.
//!
//! ```text
//! sync frame   : tag:0xB1  count:uvarint  flags:⌈2n/8⌉B  pos-column  value-column
//!   pos column  : n × uvarint(zigzag(pos_i − pos_{i−1}))   (pos_{−1} = 0)
//!   value column: full  → the value's own self-delimiting encoding
//!                 delta → uvarint(start) uvarint(len) span-bytes
//!   flags       : bit 0 activate, bit 1 delta (LSB-first, 4 records/byte)
//! gather frame : tag:0xB2  count:uvarint  vid-column  accum-column
//! mirror frame : tag:0xB3  count:uvarint  vid-column  meta/value records
//! ```
//!
//! Delta payloads ride on the [`crate::suppress::SyncFilter`] exactly as the
//! scalar delta records did: the filter's per-destination validity epochs
//! prove the receiver holds the base value, and [`min_span`] picks the
//! minimal contiguous differing byte span at *stage* time on the main
//! thread. A delta is chosen iff it is no larger than the full encoding —
//! [`sync_value_bytes`] is the single size-and-choice rule shared by the
//! encoder and the driver's byte accounting.
//!
//! Determinism: record order within a frame is the staging order (ascending
//! master position, fixed destination iteration), a pure function of the
//! committed graph state — independent of thread count and pipelining. The
//! driver charges per-record column bytes as records stage and exactly one
//! frame header per destination per superstep when the accounting flushes,
//! so the accounted bytes equal the encoding of the superstep's records as
//! one frame regardless of how many envelope chunks actually shipped
//! (`accounted_sync_frame_matches_codec` pins the equality).

use imitator_storage::codec::{
    read_uvarint, unzigzag64, uvarint_len, write_uvarint, zigzag64, Decode, DecodeError, Encode,
    Reader,
};

/// Frame tag of a columnar vertex-sync batch.
pub const SYNC_FRAME_TAG: u8 = 0xB1;
/// Frame tag of a columnar gather batch.
pub const GATHER_FRAME_TAG: u8 = 0xB2;
/// Frame tag of a columnar mirror-update batch.
pub const MIRROR_FRAME_TAG: u8 = 0xB3;

/// Minimal contiguous differing-byte span between two equal-width
/// encodings, as `(start, len)`; `len == 0` when the bytes are identical
/// (the record still ships because its activate bit differs). `None` when
/// the widths differ or exceed the u16 span fields.
pub fn min_span(old: &[u8], new: &[u8]) -> Option<(u16, u16)> {
    if old.len() != new.len() || new.len() > u16::MAX as usize {
        return None;
    }
    let first = match old.iter().zip(new).position(|(a, b)| a != b) {
        None => return Some((0, 0)),
        Some(i) => i,
    };
    let last = old
        .iter()
        .zip(new)
        .rposition(|(a, b)| a != b)
        .expect("a first differing byte implies a last");
    Some((first as u16, (last - first + 1) as u16))
}

/// Bytes one column entry costs: the zigzag-varint of the step from the
/// previous record's value (`prev = 0` before the first record).
pub fn col_delta_bytes(cur: u32, prev: u32) -> u64 {
    uvarint_len(zigzag64(i64::from(cur) - i64::from(prev))) as u64
}

/// Per-frame overhead of a sync frame over `count` records: tag, count
/// varint, and the two-bit-per-record flag bitmap.
pub fn sync_frame_overhead(count: u64) -> u64 {
    1 + uvarint_len(count) as u64 + (2 * count).div_ceil(8)
}

/// Value-column bytes for one sync record and whether the delta layout is
/// chosen: delta iff available and no larger than the full encoding.
pub fn sync_value_bytes(value_len: usize, span: Option<(u16, u16)>) -> (u64, bool) {
    if let Some((start, len)) = span {
        let d = uvarint_len(u64::from(start)) + uvarint_len(u64::from(len)) + len as usize;
        if d <= value_len {
            return (d as u64, true);
        }
    }
    (value_len as u64, false)
}

/// Column bytes of one staged sync record (position delta + value column);
/// the flag bits live in the per-frame bitmap counted by
/// [`sync_frame_overhead`].
pub fn sync_record_bytes(pos: u32, prev: u32, value_len: usize, span: Option<(u16, u16)>) -> u64 {
    col_delta_bytes(pos, prev) + sync_value_bytes(value_len, span).0
}

/// Per-frame overhead of a gather or mirror-update frame (tag + count).
pub fn small_frame_overhead(count: u64) -> u64 {
    1 + uvarint_len(count) as u64
}

/// One sync record presented to the frame encoder: the full encoded value
/// plus the staged delta span (when the destination provably holds the
/// base).
pub struct SyncRecEnc<'a> {
    /// Master position on the destination node.
    pub pos: u32,
    /// Scatter/activate bit for the replica.
    pub activate: bool,
    /// Full codec encoding of the new value.
    pub value: &'a [u8],
    /// Minimal differing span vs the value the destination holds, when the
    /// sender's filter proves one is installed there.
    pub span: Option<(u16, u16)>,
}

/// One decoded sync record.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncRecDec<V> {
    /// Master position on the destination node.
    pub pos: u32,
    /// Scatter/activate bit for the replica.
    pub activate: bool,
    /// Reconstructed value (delta payloads patched into the base).
    pub value: V,
}

/// Encodes a columnar sync frame into `out` (appended; callers reuse the
/// buffer across frames to stay allocation-free in steady state).
pub fn encode_sync_frame(recs: &[SyncRecEnc<'_>], out: &mut Vec<u8>) {
    out.push(SYNC_FRAME_TAG);
    write_uvarint(out, recs.len() as u64);
    let bitmap_at = out.len();
    out.resize(bitmap_at + (2 * recs.len()).div_ceil(8), 0);
    for (i, r) in recs.iter().enumerate() {
        let mut f = 0u8;
        if r.activate {
            f |= 1;
        }
        if sync_value_bytes(r.value.len(), r.span).1 {
            f |= 2;
        }
        out[bitmap_at + i / 4] |= f << (2 * (i % 4));
    }
    let mut prev = 0u32;
    for r in recs {
        write_uvarint(out, zigzag64(i64::from(r.pos) - i64::from(prev)));
        prev = r.pos;
    }
    for r in recs {
        if sync_value_bytes(r.value.len(), r.span).1 {
            let (start, len) = r.span.expect("delta flagged without a span");
            write_uvarint(out, u64::from(start));
            write_uvarint(out, u64::from(len));
            out.extend_from_slice(&r.value[start as usize..(start + len) as usize]);
        } else {
            out.extend_from_slice(r.value);
        }
    }
}

/// Decodes a columnar sync frame, resolving delta payloads against `base`
/// (the destination's current encoded value at that position — exactly
/// what the sender's filter entry recorded as installed there).
pub fn decode_sync_frame<V: Decode>(
    bytes: &[u8],
    mut base: impl FnMut(u32) -> Vec<u8>,
) -> Result<Vec<SyncRecDec<V>>, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.take(1)?[0] != SYNC_FRAME_TAG {
        return Err(DecodeError::Corrupt("sync frame tag"));
    }
    let count = read_uvarint(&mut r)? as usize;
    if count > bytes.len().saturating_mul(8).max(1024) {
        return Err(DecodeError::Corrupt("sync frame count"));
    }
    let bitmap = r.take((2 * count).div_ceil(8))?.to_vec();
    let mut positions = Vec::with_capacity(count);
    let mut prev = 0i64;
    for _ in 0..count {
        let pos = prev + unzigzag64(read_uvarint(&mut r)?);
        let pos = u32::try_from(pos).map_err(|_| DecodeError::Corrupt("sync position"))?;
        positions.push(pos);
        prev = i64::from(pos);
    }
    let mut out = Vec::with_capacity(count);
    for (i, &pos) in positions.iter().enumerate() {
        let flags = (bitmap[i / 4] >> (2 * (i % 4))) & 0b11;
        let value = if flags & 2 != 0 {
            let start = read_uvarint(&mut r)? as usize;
            let len = read_uvarint(&mut r)? as usize;
            let span = r.take(len)?;
            let mut full = base(pos);
            if start + len > full.len() {
                return Err(DecodeError::Corrupt("delta span exceeds base value"));
            }
            full[start..start + len].copy_from_slice(span);
            imitator_storage::codec::decode::<V>(&full)?
        } else {
            V::decode(&mut r)?
        };
        out.push(SyncRecDec {
            pos,
            activate: flags & 1 != 0,
            value,
        });
    }
    if r.remaining() > 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    Ok(out)
}

/// Decodes a single-record sync frame into raw value bytes, without a
/// `Decode` bound: with one record the value column is the buffer's tail,
/// so no self-delimiting decode is needed. Used by the suppression filter's
/// debug-build codec proof, where values are only `Encode`.
pub fn decode_sync_frame_one(
    bytes: &[u8],
    base: impl FnOnce() -> Vec<u8>,
) -> Result<SyncRecDec<Vec<u8>>, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.take(1)?[0] != SYNC_FRAME_TAG {
        return Err(DecodeError::Corrupt("sync frame tag"));
    }
    if read_uvarint(&mut r)? != 1 {
        return Err(DecodeError::Corrupt("single-record frame expected"));
    }
    let flags = r.take(1)?[0] & 0b11;
    let pos = unzigzag64(read_uvarint(&mut r)?);
    let pos = u32::try_from(pos).map_err(|_| DecodeError::Corrupt("sync position"))?;
    let value = if flags & 2 != 0 {
        let start = read_uvarint(&mut r)? as usize;
        let len = read_uvarint(&mut r)? as usize;
        let span = r.take(len)?;
        let mut full = base();
        if start + len > full.len() {
            return Err(DecodeError::Corrupt("delta span exceeds base value"));
        }
        full[start..start + len].copy_from_slice(span);
        full
    } else {
        r.take(r.remaining())?.to_vec()
    };
    Ok(SyncRecDec {
        pos,
        activate: flags & 1 != 0,
        value,
    })
}

/// Encodes a columnar gather frame: vid column (zigzag deltas) then the
/// accumulator column.
pub fn encode_gather_frame<A: Encode>(recs: &[(u32, A)], out: &mut Vec<u8>) {
    out.push(GATHER_FRAME_TAG);
    write_uvarint(out, recs.len() as u64);
    let mut prev = 0u32;
    for &(vid, _) in recs {
        write_uvarint(out, zigzag64(i64::from(vid) - i64::from(prev)));
        prev = vid;
    }
    for (_, a) in recs {
        a.encode(out);
    }
}

/// Decodes a columnar gather frame.
pub fn decode_gather_frame<A: Decode>(bytes: &[u8]) -> Result<Vec<(u32, A)>, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.take(1)?[0] != GATHER_FRAME_TAG {
        return Err(DecodeError::Corrupt("gather frame tag"));
    }
    let count = read_uvarint(&mut r)? as usize;
    if count > bytes.len().saturating_mul(8).max(1024) {
        return Err(DecodeError::Corrupt("gather frame count"));
    }
    let mut vids = Vec::with_capacity(count);
    let mut prev = 0i64;
    for _ in 0..count {
        let vid = prev + unzigzag64(read_uvarint(&mut r)?);
        let vid = u32::try_from(vid).map_err(|_| DecodeError::Corrupt("gather vid"))?;
        vids.push(vid);
        prev = i64::from(vid);
    }
    let mut out = Vec::with_capacity(count);
    for vid in vids {
        out.push((vid, A::decode(&mut r)?));
    }
    if r.remaining() > 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn min_span_finds_tightest_window() {
        assert_eq!(min_span(b"abcdef", b"abXYef"), Some((2, 2)));
        assert_eq!(min_span(b"abcdef", b"Xbcdef"), Some((0, 1)));
        assert_eq!(min_span(b"abcdef", b"abcdeX"), Some((5, 1)));
        assert_eq!(min_span(b"abc", b"abc"), Some((0, 0)));
        assert_eq!(min_span(b"abc", b"abcd"), None, "width change → no delta");
    }

    #[test]
    fn delta_chosen_only_when_no_larger_than_full() {
        // f64-sized value (8 bytes): delta = 2 varints + span.
        assert_eq!(sync_value_bytes(8, Some((0, 2))), (4, true));
        assert_eq!(sync_value_bytes(8, Some((0, 6))), (8, true)); // tie → delta
        assert_eq!(
            sync_value_bytes(8, Some((0, 7))),
            (8, false),
            "larger → full"
        );
        // u32-sized value: only tiny spans win.
        assert_eq!(sync_value_bytes(4, Some((0, 0))), (2, true));
        assert_eq!(sync_value_bytes(4, Some((1, 3))), (4, false));
        assert_eq!(sync_value_bytes(4, None), (4, false));
    }

    /// The frame-layout table the accounting promises (sizes in bytes):
    ///
    /// | frame  | tag | count      | flags    | id column        | payload column        |
    /// |--------|-----|------------|----------|------------------|-----------------------|
    /// | sync   | 1   | uvarint(n) | ⌈2n/8⌉   | Σ zzvarint(Δpos) | Σ full‖(off,len,span) |
    /// | gather | 1   | uvarint(n) | —        | Σ zzvarint(Δvid) | Σ accum encoding      |
    /// | mirror | 1   | uvarint(n) | —        | Σ zzvarint(Δvid) | Σ meta estimate       |
    #[test]
    fn accounted_sync_frame_matches_codec() {
        let values: Vec<Vec<u8>> = vec![
            7u64.to_le_bytes().to_vec(),
            u64::MAX.to_le_bytes().to_vec(),
            42u64.to_le_bytes().to_vec(),
        ];
        let olds: Vec<Option<Vec<u8>>> = vec![
            Some(6u64.to_le_bytes().to_vec()),  // 1-byte span delta
            None,                               // no base → full
            Some(42u64.to_le_bytes().to_vec()), // identical → zero-span delta
        ];
        let recs: Vec<SyncRecEnc<'_>> = values
            .iter()
            .zip(&olds)
            .enumerate()
            .map(|(i, (v, old))| SyncRecEnc {
                pos: [900, 3, 40_000][i],
                activate: i % 2 == 0,
                value: v,
                span: old.as_deref().and_then(|o| min_span(o, v)),
            })
            .collect();
        let mut buf = Vec::new();
        encode_sync_frame(&recs, &mut buf);
        let mut accounted = sync_frame_overhead(recs.len() as u64);
        let mut prev = 0u32;
        for r in &recs {
            accounted += sync_record_bytes(r.pos, prev, r.value.len(), r.span);
            prev = r.pos;
        }
        assert_eq!(buf.len() as u64, accounted, "accounting must equal codec");
    }

    #[test]
    fn accounted_gather_frame_matches_codec() {
        let recs: Vec<(u32, u64)> = vec![(5, 10), (1_000_000, 20), (17, u64::MAX)];
        let mut buf = Vec::new();
        encode_gather_frame(&recs, &mut buf);
        let mut accounted = small_frame_overhead(recs.len() as u64);
        let mut prev = 0u32;
        for &(vid, _) in &recs {
            accounted += col_delta_bytes(vid, prev) + 8;
            prev = vid;
        }
        assert_eq!(buf.len() as u64, accounted);
    }

    #[test]
    fn sync_frame_roundtrips_deltas_against_base() {
        let old = 0x0101_0101_0101_0101u64;
        let new = 0x0101_0109_0901_0101u64;
        let (ob, nb) = (old.to_le_bytes(), new.to_le_bytes());
        let recs = vec![
            SyncRecEnc {
                pos: 9,
                activate: true,
                value: &nb,
                span: min_span(&ob, &nb),
            },
            SyncRecEnc {
                pos: 2,
                activate: false,
                value: &nb,
                span: None,
            },
        ];
        let mut buf = Vec::new();
        encode_sync_frame(&recs, &mut buf);
        let out: Vec<SyncRecDec<u64>> = decode_sync_frame(&buf, |pos| {
            assert_eq!(pos, 9, "only the delta record consults the base");
            ob.to_vec()
        })
        .unwrap();
        assert_eq!(
            out,
            vec![
                SyncRecDec {
                    pos: 9,
                    activate: true,
                    value: new
                },
                SyncRecDec {
                    pos: 2,
                    activate: false,
                    value: new
                },
            ]
        );
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        assert!(decode_sync_frame::<u32>(&[GATHER_FRAME_TAG], |_| vec![]).is_err());
        assert!(decode_gather_frame::<u32>(&[SYNC_FRAME_TAG]).is_err());
        let mut buf = Vec::new();
        encode_gather_frame::<u32>(&[(1, 5)], &mut buf);
        buf.push(0); // trailing byte
        assert!(matches!(
            decode_gather_frame::<u32>(&buf),
            Err(DecodeError::TrailingBytes(_))
        ));
        // Delta span wider than the receiver's base value.
        let nb = 7u64.to_le_bytes();
        let recs = vec![SyncRecEnc {
            pos: 0,
            activate: false,
            value: &nb,
            span: Some((0, 3)),
        }];
        let mut buf = Vec::new();
        encode_sync_frame(&recs, &mut buf);
        assert!(decode_sync_frame::<u64>(&buf, |_| vec![0u8; 2]).is_err());
    }

    /// One generated record: (pos, activate, new value bytes, optional base).
    type GenRec = (u32, bool, [u8; 8], Option<[u8; 8]>);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary batches ⇄ bytes ⇄ batches, full and delta payloads,
        /// with the accounted size always equal to the encoded size.
        #[test]
        fn columnar_codec_roundtrip(
            batch in proptest::collection::vec(
                (0u32..200_000, any::<bool>(), any::<u64>(), any::<u64>(), any::<bool>()),
                0..64,
            )
        ) {
            let encoded: Vec<GenRec> = batch
                .iter()
                .map(|&(pos, act, new, old, has_base)| {
                    (pos, act, new.to_le_bytes(), has_base.then(|| old.to_le_bytes()))
                })
                .collect();
            let recs: Vec<SyncRecEnc<'_>> = encoded
                .iter()
                .map(|(pos, act, new, old)| SyncRecEnc {
                    pos: *pos,
                    activate: *act,
                    value: new,
                    span: old.as_ref().and_then(|o| min_span(o, new)),
                })
                .collect();
            let mut buf = Vec::new();
            encode_sync_frame(&recs, &mut buf);

            let mut accounted = sync_frame_overhead(recs.len() as u64);
            let mut prev = 0u32;
            for r in &recs {
                accounted += sync_record_bytes(r.pos, prev, r.value.len(), r.span);
                prev = r.pos;
            }
            prop_assert_eq!(buf.len() as u64, accounted);

            // Bases keyed by record index order: decode consults them in
            // encode order, so replay the same sequence.
            let mut base_iter = encoded
                .iter()
                .filter(|(_, _, new, old)| {
                    old.as_ref()
                        .and_then(|o| min_span(o, new))
                        .is_some_and(|s| sync_value_bytes(8, Some(s)).1)
                })
                .map(|(_, _, _, old)| old.expect("filtered on Some"))
                .collect::<Vec<_>>()
                .into_iter();
            let out: Vec<SyncRecDec<u64>> =
                decode_sync_frame(&buf, |_| base_iter.next().expect("base per delta").to_vec())
                    .unwrap();
            let want: Vec<SyncRecDec<u64>> = batch
                .iter()
                .map(|&(pos, act, new, _, _)| SyncRecDec {
                    pos,
                    activate: act,
                    value: new,
                })
                .collect();
            prop_assert_eq!(out, want);

            // Gather frames: same vids, u64 accumulators.
            let grecs: Vec<(u32, u64)> =
                batch.iter().map(|&(pos, _, a, _, _)| (pos, a)).collect();
            let mut gbuf = Vec::new();
            encode_gather_frame(&grecs, &mut gbuf);
            let mut gacc = small_frame_overhead(grecs.len() as u64);
            let mut prev = 0u32;
            for &(vid, _) in &grecs {
                gacc += col_delta_bytes(vid, prev) + 8;
                prev = vid;
            }
            prop_assert_eq!(gbuf.len() as u64, gacc);
            prop_assert_eq!(decode_gather_frame::<u64>(&gbuf).unwrap(), grecs);
        }
    }
}

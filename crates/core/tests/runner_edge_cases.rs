//! Edge cases of the distributed runners beyond the main drills: delayed
//! failure detection, failures at the first and the very last iteration,
//! single-node clusters, zero-iteration runs, and convergence racing a
//! scheduled crash.

use std::sync::Arc;
use std::time::Duration;

use imitator::{run_edge_cut, FtMode, RecoveryStrategy, RunConfig, RunReport};
use imitator_cluster::{FailPoint, FailurePlan, NodeId};
use imitator_engine::{Degrees, VertexProgram};
use imitator_graph::{gen, Graph, Vid};
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};
use imitator_storage::{Dfs, DfsConfig};

struct MinLabel;

impl VertexProgram for MinLabel {
    type Value = u32;
    type Accum = u32;

    fn init(&self, vid: Vid, _d: &Degrees) -> u32 {
        vid.raw()
    }

    fn gather(&self, _w: f32, src: &u32) -> u32 {
        *src
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: Vid, old: &u32, acc: Option<u32>, _d: &Degrees) -> u32 {
        acc.map_or(*old, |a| a.min(*old))
    }

    fn scatter(&self, _v: Vid, old: &u32, new: &u32) -> bool {
        new < old
    }
}

fn run(g: &Graph, nodes: usize, cfg: RunConfig, failures: Vec<FailurePlan>) -> RunReport<u32> {
    let cut = HashEdgeCut.partition(g, nodes);
    run_edge_cut(
        g,
        &cut,
        Arc::new(MinLabel),
        cfg,
        failures,
        Dfs::new(DfsConfig::instant()),
    )
}

fn rep(recovery: RecoveryStrategy, standbys: usize) -> RunConfig {
    RunConfig {
        num_nodes: 4,
        max_iters: 50,
        ft: FtMode::Replication {
            tolerance: 1,
            selfish_opt: false,
            recovery,
        },
        standbys,
        ..RunConfig::default()
    }
}

#[test]
fn single_node_cluster_runs() {
    let g = gen::power_law(300, 2.0, 5, 3);
    let r = run(
        &g,
        1,
        RunConfig {
            num_nodes: 1,
            max_iters: 50,
            ft: FtMode::None,
            ..RunConfig::default()
        },
        vec![],
    );
    assert!(r.iterations > 0);
}

#[test]
fn zero_iteration_budget_returns_initial_values() {
    let g = gen::power_law(200, 2.0, 5, 5);
    let r = run(
        &g,
        3,
        RunConfig {
            num_nodes: 3,
            max_iters: 0,
            ft: FtMode::None,
            ..RunConfig::default()
        },
        vec![],
    );
    assert_eq!(r.iterations, 0);
    let expected: Vec<u32> = (0..200).collect();
    assert_eq!(r.values, expected);
}

#[test]
fn delayed_detection_still_recovers_identically() {
    let g = gen::power_law(800, 2.0, 6, 7);
    let clean = run(
        &g,
        4,
        RunConfig {
            num_nodes: 4,
            max_iters: 50,
            ft: FtMode::None,
            ..RunConfig::default()
        },
        vec![],
    );
    for recovery in [RecoveryStrategy::Rebirth, RecoveryStrategy::Migration] {
        let standbys = usize::from(recovery == RecoveryStrategy::Rebirth);
        let mut cfg = rep(recovery, standbys);
        cfg.detection_delay = Duration::from_millis(40);
        let r = run(
            &g,
            4,
            cfg,
            vec![FailurePlan {
                node: NodeId::new(2),
                iteration: 1,
                point: FailPoint::BeforeBarrier,
            }],
        );
        assert_eq!(
            r.values, clean.values,
            "{recovery:?} with delayed detection"
        );
        assert_eq!(r.recoveries.len(), 1);
    }
}

#[test]
fn failure_scheduled_after_convergence_never_fires() {
    let g = gen::from_pairs(40, &[(0, 1), (1, 2)]); // converges in ~3 iterations
    let r = run(
        &g,
        3,
        RunConfig {
            num_nodes: 3,
            max_iters: 50,
            ft: FtMode::Replication {
                tolerance: 1,
                selfish_opt: false,
                recovery: RecoveryStrategy::Migration,
            },
            ..RunConfig::default()
        },
        vec![FailurePlan {
            node: NodeId::new(1),
            iteration: 40,
            point: FailPoint::BeforeBarrier,
        }],
    );
    assert!(r.recoveries.is_empty());
    let expected: Vec<u32> = {
        let mut v: Vec<u32> = (0..40).collect();
        v[1] = 0;
        v[2] = 0;
        v
    };
    assert_eq!(r.values, expected);
}

#[test]
fn back_to_back_failures_on_consecutive_iterations() {
    let g = gen::power_law(900, 2.0, 6, 9);
    let clean = run(
        &g,
        5,
        RunConfig {
            num_nodes: 5,
            max_iters: 50,
            ft: FtMode::None,
            ..RunConfig::default()
        },
        vec![],
    );
    let r = run(
        &g,
        5,
        RunConfig {
            num_nodes: 5,
            max_iters: 50,
            ft: FtMode::Replication {
                tolerance: 2,
                selfish_opt: false,
                recovery: RecoveryStrategy::Migration,
            },
            ..RunConfig::default()
        },
        vec![
            FailurePlan {
                node: NodeId::new(1),
                iteration: 1,
                point: FailPoint::BeforeBarrier,
            },
            FailurePlan {
                node: NodeId::new(2),
                iteration: 2,
                point: FailPoint::BeforeBarrier,
            },
        ],
    );
    assert_eq!(r.values, clean.values);
    assert_eq!(r.recoveries.len(), 2);
}

#[test]
fn rebirth_then_same_node_dies_again() {
    // The standby that adopted node 2's identity dies too; a second standby
    // must take over.
    let g = gen::power_law(900, 2.0, 6, 11);
    let clean = run(
        &g,
        4,
        RunConfig {
            num_nodes: 4,
            max_iters: 50,
            ft: FtMode::None,
            ..RunConfig::default()
        },
        vec![],
    );
    let r = run(
        &g,
        4,
        rep(RecoveryStrategy::Rebirth, 2),
        vec![
            FailurePlan {
                node: NodeId::new(2),
                iteration: 1,
                point: FailPoint::BeforeBarrier,
            },
            FailurePlan {
                node: NodeId::new(2),
                iteration: 4,
                point: FailPoint::BeforeBarrier,
            },
        ],
    );
    assert_eq!(r.values, clean.values);
    assert_eq!(r.recoveries.len(), 2);
}

//! End-to-end tests of the edge-cut (Cyclops) distributed runner: results
//! must match a sequential reference, and runs with injected failures and
//! recovery must produce bit-identical results to failure-free runs — the
//! paper's core correctness claim.

use std::sync::Arc;
use std::time::Duration;

use imitator::{run_edge_cut, FtMode, RecoveryStrategy, RunConfig, TransportKind};
use imitator_cluster::{FailPoint, FailurePlan, NodeId};
use imitator_engine::{Degrees, VertexProgram};
use imitator_graph::{gen, Graph, Vid};
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};
use imitator_storage::{epoch, Dfs, DfsConfig, EpochKind};

/// Min-label propagation with activation semantics (SSSP-like front).
struct MinLabel;

impl VertexProgram for MinLabel {
    type Value = u32;
    type Accum = u32;

    fn init(&self, vid: Vid, _d: &Degrees) -> u32 {
        vid.raw()
    }

    fn gather(&self, _w: f32, src: &u32) -> u32 {
        *src
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: Vid, old: &u32, acc: Option<u32>, _d: &Degrees) -> u32 {
        acc.map_or(*old, |a| a.min(*old))
    }

    fn scatter(&self, _v: Vid, old: &u32, new: &u32) -> bool {
        new < old
    }
}

/// A PageRank-flavoured dense program (always active, f64 values, selfish
/// compatible: rank is recomputed purely from in-neighbours).
struct RankLite;

#[derive(Debug, Clone, PartialEq)]
struct Rank {
    value: f64,
    share: f64, // value / out_degree, what neighbours gather
}

impl VertexProgram for RankLite {
    type Value = Rank;
    type Accum = f64;

    fn init(&self, vid: Vid, d: &Degrees) -> Rank {
        let value = 1.0;
        Rank {
            value,
            share: value / f64::from(d.out_degree(vid).max(1)),
        }
    }

    fn gather(&self, _w: f32, src: &Rank) -> f64 {
        src.share
    }

    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn apply(&self, vid: Vid, _old: &Rank, acc: Option<f64>, d: &Degrees) -> Rank {
        let value = 0.15 + 0.85 * acc.unwrap_or(0.0);
        Rank {
            value,
            share: value / f64::from(d.out_degree(vid).max(1)),
        }
    }

    fn scatter(&self, _v: Vid, old: &Rank, new: &Rank) -> bool {
        (old.value - new.value).abs() > 1e-12
    }

    fn selfish_compatible(&self) -> bool {
        true
    }

    fn value_wire_bytes(&self, _v: &Rank) -> usize {
        16
    }

    fn initially_active(&self, _vid: Vid) -> bool {
        true
    }
}

impl imitator_storage::codec::Encode for Rank {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.value.encode(buf);
        self.share.encode(buf);
    }
}

impl imitator_storage::codec::Decode for Rank {
    fn decode(
        r: &mut imitator_storage::codec::Reader<'_>,
    ) -> Result<Self, imitator_storage::codec::DecodeError> {
        Ok(Rank {
            value: f64::decode(r)?,
            share: f64::decode(r)?,
        })
    }
}

impl imitator_metrics::MemSize for Rank {
    fn mem_bytes(&self) -> usize {
        16
    }

    fn heap_bytes(&self) -> usize {
        0
    }
}

fn min_label_reference(g: &Graph, iters: usize) -> Vec<u32> {
    let mut vals: Vec<u32> = (0..g.num_vertices() as u32).collect();
    for _ in 0..iters {
        let prev = vals.clone();
        for e in g.edges() {
            let s = prev[e.src.index()];
            if s < vals[e.dst.index()] {
                vals[e.dst.index()] = s;
            }
        }
    }
    vals
}

fn base_cfg(nodes: usize) -> RunConfig {
    RunConfig {
        num_nodes: nodes,
        max_iters: 100,
        ft: FtMode::None,
        detection_delay: Duration::ZERO,
        standbys: 0,
        threads_per_node: 2,
        sync_suppress: true,
        pipeline: true,
        delta_sync: true,
        transport: TransportKind::Channel,
        ..RunConfig::default()
    }
}

fn fail(node: u32, iteration: u64, point: FailPoint) -> FailurePlan {
    FailurePlan {
        node: NodeId::new(node),
        iteration,
        point,
    }
}

fn run_min_label(
    g: &Graph,
    nodes: usize,
    ft: FtMode,
    standbys: usize,
    failures: Vec<FailurePlan>,
) -> imitator::RunReport<u32> {
    let cut = HashEdgeCut.partition(g, nodes);
    let cfg = RunConfig {
        ft,
        standbys,
        ..base_cfg(nodes)
    };
    run_edge_cut(
        g,
        &cut,
        Arc::new(MinLabel),
        cfg,
        failures,
        Dfs::new(DfsConfig::instant()),
    )
}

#[test]
fn no_ft_matches_reference() {
    let g = gen::power_law(1_500, 2.0, 6, 42);
    let report = run_min_label(&g, 4, FtMode::None, 0, vec![]);
    assert_eq!(report.values, min_label_reference(&g, 100));
    assert!(report.iterations > 0);
    assert!(report.comm.messages > 0);
    assert_eq!(report.ft_comm.messages, 0);
    assert!(report.recoveries.is_empty());
}

#[test]
fn replication_without_failure_matches_and_counts_overhead() {
    let g = gen::power_law_selfish(1_500, 2.0, 6, 0.2, 7);
    let baseline = run_min_label(&g, 4, FtMode::None, 0, vec![]);
    let rep = run_min_label(
        &g,
        4,
        FtMode::Replication {
            tolerance: 1,
            selfish_opt: false,
            recovery: RecoveryStrategy::Rebirth,
        },
        1,
        vec![],
    );
    assert_eq!(rep.values, baseline.values);
    assert!(
        rep.extra_replicas > 0,
        "selfish-heavy graph needs FT replicas"
    );
    assert!(
        rep.ft_comm.messages > 0,
        "extra replicas must be synchronised without the selfish optimisation"
    );
    assert!(rep.comm.messages >= baseline.comm.messages);
}

#[test]
fn selfish_optimisation_eliminates_ft_traffic() {
    // The optimisation only applies to programs whose values are
    // recomputable from in-neighbours (RankLite declares that; MinLabel's
    // running minimum is not).
    let g = gen::power_law_selfish(1_500, 2.0, 6, 0.25, 9);
    let cut = HashEdgeCut.partition(&g, 4);
    let run = |selfish_opt: bool| {
        let cfg = RunConfig {
            max_iters: 8,
            ft: FtMode::Replication {
                tolerance: 1,
                selfish_opt,
                recovery: RecoveryStrategy::Rebirth,
            },
            standbys: 1,
            ..base_cfg(4)
        };
        run_edge_cut(
            &g,
            &cut,
            Arc::new(RankLite),
            cfg,
            vec![],
            Dfs::new(DfsConfig::instant()),
        )
    };
    let without = run(false);
    let with = run(true);
    assert_eq!(with.values, without.values);
    assert!(
        with.ft_comm.messages < without.ft_comm.messages,
        "selfish opt should remove FT sync traffic: {} vs {}",
        with.ft_comm.messages,
        without.ft_comm.messages
    );
}

#[test]
fn rebirth_recovers_bit_identical_results() {
    let g = gen::power_law(2_000, 2.0, 6, 11);
    let clean = run_min_label(&g, 4, FtMode::None, 0, vec![]);
    for (iteration, point) in [
        (0, FailPoint::BeforeBarrier),
        (2, FailPoint::BeforeBarrier),
        (1, FailPoint::AfterBarrier),
    ] {
        let rep = run_min_label(
            &g,
            4,
            FtMode::Replication {
                tolerance: 1,
                selfish_opt: false,
                recovery: RecoveryStrategy::Rebirth,
            },
            1,
            vec![fail(2, iteration, point)],
        );
        assert_eq!(
            rep.values, clean.values,
            "rebirth at iter {iteration} {point:?} diverged"
        );
        assert_eq!(rep.recoveries.len(), 1);
        assert_eq!(rep.recoveries[0].strategy, "rebirth");
        assert!(rep.recoveries[0].vertices_recovered > 0);
    }
}

#[test]
fn migration_recovers_bit_identical_results() {
    let g = gen::power_law(2_000, 2.0, 6, 13);
    let clean = run_min_label(&g, 4, FtMode::None, 0, vec![]);
    for (iteration, point) in [
        (0, FailPoint::BeforeBarrier),
        (2, FailPoint::BeforeBarrier),
        (1, FailPoint::AfterBarrier),
    ] {
        let rep = run_min_label(
            &g,
            4,
            FtMode::Replication {
                tolerance: 1,
                selfish_opt: false,
                recovery: RecoveryStrategy::Migration,
            },
            0,
            vec![fail(1, iteration, point)],
        );
        assert_eq!(
            rep.values, clean.values,
            "migration at iter {iteration} {point:?} diverged"
        );
        assert_eq!(rep.recoveries.len(), 1);
        assert_eq!(rep.recoveries[0].strategy, "migration");
    }
}

#[test]
fn checkpoint_recovers_matching_results() {
    let g = gen::power_law(1_200, 2.0, 6, 17);
    let clean = run_min_label(&g, 4, FtMode::None, 0, vec![]);
    for iteration in [1, 3] {
        let rep = run_min_label(
            &g,
            4,
            FtMode::Checkpoint {
                interval: 2,
                incremental: false,
            },
            1,
            vec![fail(3, iteration, FailPoint::BeforeBarrier)],
        );
        assert_eq!(rep.values, clean.values, "checkpoint at iter {iteration}");
        assert_eq!(rep.recoveries[0].strategy, "checkpoint");
        assert!(rep.ckpt_time > Duration::ZERO);
    }
}

#[test]
fn double_failure_with_two_mirrors_rebirth() {
    let g = gen::power_law(1_500, 2.0, 6, 19);
    let clean = run_min_label(&g, 5, FtMode::None, 0, vec![]);
    let rep = run_min_label(
        &g,
        5,
        FtMode::Replication {
            tolerance: 2,
            selfish_opt: false,
            recovery: RecoveryStrategy::Rebirth,
        },
        2,
        vec![
            fail(1, 2, FailPoint::BeforeBarrier),
            fail(3, 2, FailPoint::BeforeBarrier),
        ],
    );
    assert_eq!(rep.values, clean.values);
    assert_eq!(rep.recoveries.len(), 1);
    assert_eq!(rep.recoveries[0].failed_nodes, 2);
}

#[test]
fn double_failure_with_two_mirrors_migration() {
    let g = gen::power_law(1_500, 2.0, 6, 23);
    let clean = run_min_label(&g, 5, FtMode::None, 0, vec![]);
    let rep = run_min_label(
        &g,
        5,
        FtMode::Replication {
            tolerance: 2,
            selfish_opt: false,
            recovery: RecoveryStrategy::Migration,
        },
        0,
        vec![
            fail(0, 2, FailPoint::BeforeBarrier),
            fail(4, 2, FailPoint::BeforeBarrier),
        ],
    );
    assert_eq!(rep.values, clean.values);
    assert_eq!(rep.recoveries[0].failed_nodes, 2);
}

#[test]
fn sequential_failures_migration() {
    // Two separate failure episodes: node 1 at iteration 1, node 2 at
    // iteration 4 — the second recovery runs on the already-migrated state.
    let g = gen::power_law(1_500, 2.0, 6, 29);
    let clean = run_min_label(&g, 5, FtMode::None, 0, vec![]);
    let rep = run_min_label(
        &g,
        5,
        FtMode::Replication {
            tolerance: 2,
            selfish_opt: false,
            recovery: RecoveryStrategy::Migration,
        },
        0,
        vec![
            fail(1, 1, FailPoint::BeforeBarrier),
            fail(2, 4, FailPoint::BeforeBarrier),
        ],
    );
    assert_eq!(rep.values, clean.values);
    assert_eq!(rep.recoveries.len(), 2);
}

#[test]
fn pagerank_like_rebirth_is_bit_identical() {
    let g = gen::power_law_selfish(1_200, 2.0, 8, 0.15, 31);
    let cut = HashEdgeCut.partition(&g, 4);
    let prog = Arc::new(RankLite);
    let cfg = RunConfig {
        max_iters: 10,
        ..base_cfg(4)
    };
    let clean = run_edge_cut(
        &g,
        &cut,
        Arc::clone(&prog),
        cfg,
        vec![],
        Dfs::new(DfsConfig::instant()),
    );
    let cfg_rep = RunConfig {
        max_iters: 10,
        ft: FtMode::Replication {
            tolerance: 1,
            selfish_opt: true,
            recovery: RecoveryStrategy::Rebirth,
        },
        standbys: 1,
        ..base_cfg(4)
    };
    let rep = run_edge_cut(
        &g,
        &cut,
        prog,
        cfg_rep,
        vec![fail(2, 4, FailPoint::BeforeBarrier)],
        Dfs::new(DfsConfig::instant()),
    );
    // Selfish vertices' recovered values may be one apply step ahead; every
    // vertex with consumers must match exactly.
    let mut out_deg = vec![0u32; g.num_vertices()];
    for e in g.edges() {
        out_deg[e.src.index()] += 1;
    }
    for v in g.vertices() {
        if out_deg[v.index()] > 0 {
            assert_eq!(
                rep.values[v.index()],
                clean.values[v.index()],
                "non-selfish vertex {v} diverged"
            );
        } else {
            assert!(
                (rep.values[v.index()].value - clean.values[v.index()].value).abs() < 0.3,
                "selfish vertex {v} drifted too far"
            );
        }
    }
}

#[test]
fn migration_preserves_ft_level_for_next_failure() {
    // After migrating node 1 away, every vertex must again have a live
    // mirror — proven by surviving a second failure.
    let g = gen::power_law(1_000, 2.0, 6, 37);
    let clean = run_min_label(&g, 4, FtMode::None, 0, vec![]);
    let rep = run_min_label(
        &g,
        4,
        FtMode::Replication {
            tolerance: 1,
            selfish_opt: false,
            recovery: RecoveryStrategy::Migration,
        },
        0,
        vec![
            fail(1, 1, FailPoint::BeforeBarrier),
            fail(0, 3, FailPoint::BeforeBarrier),
        ],
    );
    assert_eq!(rep.values, clean.values);
    assert_eq!(rep.recoveries.len(), 2);
}

#[test]
fn incremental_checkpoint_recovers_matching_results() {
    // Incremental snapshots persist only changed values plus full activation
    // bitmaps; recovery replays the chain. MinLabel's shrinking activation
    // front makes the dirty sets small and the flag handling load-bearing.
    let g = gen::power_law(1_200, 2.0, 6, 67);
    let clean = run_min_label(&g, 4, FtMode::None, 0, vec![]);
    for iteration in [1, 3, 6] {
        let rep = run_min_label(
            &g,
            4,
            FtMode::Checkpoint {
                interval: 2,
                incremental: true,
            },
            1,
            vec![fail(3, iteration, FailPoint::BeforeBarrier)],
        );
        assert_eq!(
            rep.values, clean.values,
            "incremental checkpoint at iter {iteration}"
        );
        assert_eq!(rep.recoveries[0].strategy, "checkpoint");
    }
}

#[test]
fn incremental_snapshots_shrink_as_the_front_quiets() {
    // The whole point of §2.3's incremental snapshots: once most vertices
    // stop changing, later snapshots are much smaller than the first.
    let g = gen::power_law(2_000, 2.0, 6, 69);
    let cut = HashEdgeCut.partition(&g, 4);
    let dfs = Dfs::new(DfsConfig::instant());
    run_edge_cut(
        &g,
        &cut,
        Arc::new(MinLabel),
        RunConfig {
            ft: FtMode::Checkpoint {
                interval: 1,
                incremental: true,
            },
            ..base_cfg(4)
        },
        vec![],
        dfs.clone(),
    );
    // Periodic full epochs re-snapshot everything to bound the recovery
    // chain; the shrinkage claim is about the *delta* epochs in between, so
    // compare the first delta against the last one.
    let deltas: Vec<u64> = {
        let mut d: Vec<u64> = dfs
            .list("ec/ckpt/")
            .iter()
            .filter_map(|p| p.split('/').nth(2)?.parse().ok())
            .filter(|&e| matches!(epoch::read_roster(&dfs, "ec", e), Ok((EpochKind::Delta, _))))
            .collect();
        d.sort_unstable();
        d.dedup();
        d
    };
    let epoch_bytes = |e: u64| -> usize {
        dfs.list(&format!("ec/ckpt/{e}/"))
            .iter()
            .map(|p| dfs.read(p).unwrap().len())
            .sum()
    };
    let early = epoch_bytes(*deltas.first().expect("run writes delta epochs"));
    let late = epoch_bytes(*deltas.last().unwrap());
    assert!(
        late * 2 < early,
        "late delta snapshot ({late} B) should be far smaller than the first ({early} B)"
    );
}

//! End-to-end tests of the vertex-cut (PowerLyra) distributed runner.

use std::sync::Arc;
use std::time::Duration;

use imitator::{run_vertex_cut, FtMode, RecoveryStrategy, RunConfig, TransportKind};
use imitator_cluster::{FailPoint, FailurePlan, NodeId};
use imitator_engine::{Degrees, VertexProgram};
use imitator_graph::{gen, Graph, Vid};
use imitator_partition::{
    GridVertexCut, HybridVertexCut, RandomVertexCut, VertexCut, VertexCutPartitioner,
};
use imitator_storage::{Dfs, DfsConfig};

/// Integer PageRank-like fixpoint: value = 1 + sum of in-neighbour values,
/// saturating — deterministic in any combine order thanks to saturating
/// integer addition, and it converges once every path saturates or the
/// iteration cap strikes.
struct SumCount;

impl VertexProgram for SumCount {
    type Value = u64;
    type Accum = u64;

    fn init(&self, _vid: Vid, _d: &Degrees) -> u64 {
        1
    }

    fn gather(&self, _w: f32, src: &u64) -> u64 {
        *src
    }

    fn combine(&self, a: u64, b: u64) -> u64 {
        a.saturating_add(b)
    }

    fn apply(&self, _v: Vid, _old: &u64, acc: Option<u64>, _d: &Degrees) -> u64 {
        1 + acc.unwrap_or(0).min(1 << 40)
    }

    fn scatter(&self, _v: Vid, old: &u64, new: &u64) -> bool {
        old != new
    }
}

/// Sequential dense reference of the same fixpoint.
fn sum_count_reference(g: &Graph, max_iters: usize) -> Vec<u64> {
    let mut vals = vec![1u64; g.num_vertices()];
    for _ in 0..max_iters {
        let mut acc = vec![0u64; g.num_vertices()];
        for e in g.edges() {
            acc[e.dst.index()] = acc[e.dst.index()].saturating_add(vals[e.src.index()]);
        }
        let next: Vec<u64> = acc.iter().map(|&a| 1 + a.min(1 << 40)).collect();
        if next == vals {
            break;
        }
        vals = next;
    }
    vals
}

fn cfg(nodes: usize, ft: FtMode, standbys: usize) -> RunConfig {
    RunConfig {
        num_nodes: nodes,
        max_iters: 12,
        ft,
        detection_delay: Duration::ZERO,
        standbys,
        threads_per_node: 2,
        sync_suppress: true,
        pipeline: true,
        delta_sync: true,
        transport: TransportKind::Channel,
        ..RunConfig::default()
    }
}

fn fail(node: u32, iteration: u64, point: FailPoint) -> FailurePlan {
    FailurePlan {
        node: NodeId::new(node),
        iteration,
        point,
    }
}

fn run(
    g: &Graph,
    cut: &VertexCut,
    c: RunConfig,
    failures: Vec<FailurePlan>,
) -> imitator::RunReport<u64> {
    run_vertex_cut(
        g,
        cut,
        Arc::new(SumCount),
        c,
        failures,
        Dfs::new(DfsConfig::instant()),
    )
}

#[test]
fn no_ft_matches_reference_on_all_partitioners() {
    let g = gen::power_law(1_200, 2.0, 6, 51);
    let expected = sum_count_reference(&g, 12);
    for cut in [
        RandomVertexCut.partition(&g, 4),
        GridVertexCut.partition(&g, 4),
        HybridVertexCut::with_threshold(20).partition(&g, 4),
    ] {
        let report = run(&g, &cut, cfg(4, FtMode::None, 0), vec![]);
        assert_eq!(report.values, expected);
    }
}

#[test]
fn replication_without_failure_matches() {
    let g = gen::power_law(1_200, 2.0, 6, 53);
    let cut = HybridVertexCut::with_threshold(20).partition(&g, 4);
    let base = run(&g, &cut, cfg(4, FtMode::None, 0), vec![]);
    let rep = run(
        &g,
        &cut,
        cfg(
            4,
            FtMode::Replication {
                tolerance: 1,
                selfish_opt: false,
                recovery: RecoveryStrategy::Rebirth,
            },
            1,
        ),
        vec![],
    );
    assert_eq!(rep.values, base.values);
    assert!(rep.comm.messages >= base.comm.messages);
}

#[test]
fn rebirth_recovers_bit_identical_results() {
    let g = gen::power_law(1_500, 2.0, 6, 55);
    let cut = RandomVertexCut.partition(&g, 4);
    let clean = run(&g, &cut, cfg(4, FtMode::None, 0), vec![]);
    for (iteration, point) in [
        (0, FailPoint::BeforeBarrier),
        (3, FailPoint::BeforeBarrier),
        (2, FailPoint::AfterBarrier),
    ] {
        let rep = run(
            &g,
            &cut,
            cfg(
                4,
                FtMode::Replication {
                    tolerance: 1,
                    selfish_opt: false,
                    recovery: RecoveryStrategy::Rebirth,
                },
                1,
            ),
            vec![fail(2, iteration, point)],
        );
        assert_eq!(
            rep.values, clean.values,
            "vc rebirth at iter {iteration} {point:?} diverged"
        );
        assert_eq!(rep.recoveries.len(), 1);
        assert!(
            rep.recoveries[0].edges_recovered > 0,
            "edges reloaded from edge-ckpt"
        );
    }
}

#[test]
fn migration_recovers_bit_identical_results() {
    let g = gen::power_law(1_500, 2.0, 6, 57);
    let cut = HybridVertexCut::with_threshold(20).partition(&g, 4);
    let clean = run(&g, &cut, cfg(4, FtMode::None, 0), vec![]);
    for (iteration, point) in [
        (0, FailPoint::BeforeBarrier),
        (3, FailPoint::BeforeBarrier),
        (2, FailPoint::AfterBarrier),
    ] {
        let rep = run(
            &g,
            &cut,
            cfg(
                4,
                FtMode::Replication {
                    tolerance: 1,
                    selfish_opt: false,
                    recovery: RecoveryStrategy::Migration,
                },
                0,
            ),
            vec![fail(1, iteration, point)],
        );
        assert_eq!(
            rep.values, clean.values,
            "vc migration at iter {iteration} {point:?} diverged"
        );
        assert_eq!(rep.recoveries[0].strategy, "migration");
    }
}

#[test]
fn checkpoint_recovers_matching_results() {
    let g = gen::power_law(1_000, 2.0, 6, 59);
    let cut = RandomVertexCut.partition(&g, 4);
    let clean = run(&g, &cut, cfg(4, FtMode::None, 0), vec![]);
    for iteration in [1, 4] {
        let rep = run(
            &g,
            &cut,
            cfg(
                4,
                FtMode::Checkpoint {
                    interval: 2,
                    incremental: false,
                },
                1,
            ),
            vec![fail(3, iteration, FailPoint::BeforeBarrier)],
        );
        assert_eq!(
            rep.values, clean.values,
            "vc checkpoint at iter {iteration}"
        );
        assert_eq!(rep.recoveries[0].strategy, "checkpoint");
    }
}

#[test]
fn multi_failure_migration_with_two_mirrors() {
    let g = gen::power_law(1_200, 2.0, 6, 61);
    let cut = RandomVertexCut.partition(&g, 5);
    let clean = run(&g, &cut, cfg(5, FtMode::None, 0), vec![]);
    let rep = run(
        &g,
        &cut,
        cfg(
            5,
            FtMode::Replication {
                tolerance: 2,
                selfish_opt: false,
                recovery: RecoveryStrategy::Migration,
            },
            0,
        ),
        vec![
            fail(0, 2, FailPoint::BeforeBarrier),
            fail(3, 2, FailPoint::BeforeBarrier),
        ],
    );
    assert_eq!(rep.values, clean.values);
    assert_eq!(rep.recoveries[0].failed_nodes, 2);
}

#[test]
fn multi_failure_rebirth_with_two_mirrors() {
    let g = gen::power_law(1_200, 2.0, 6, 63);
    let cut = RandomVertexCut.partition(&g, 5);
    let clean = run(&g, &cut, cfg(5, FtMode::None, 0), vec![]);
    let rep = run(
        &g,
        &cut,
        cfg(
            5,
            FtMode::Replication {
                tolerance: 2,
                selfish_opt: false,
                recovery: RecoveryStrategy::Rebirth,
            },
            2,
        ),
        vec![
            fail(1, 2, FailPoint::BeforeBarrier),
            fail(4, 2, FailPoint::BeforeBarrier),
        ],
    );
    assert_eq!(rep.values, clean.values);
}

#[test]
fn sequential_failures_migration_vc() {
    let g = gen::power_law(1_200, 2.0, 6, 65);
    let cut = RandomVertexCut.partition(&g, 5);
    let clean = run(&g, &cut, cfg(5, FtMode::None, 0), vec![]);
    let rep = run(
        &g,
        &cut,
        cfg(
            5,
            FtMode::Replication {
                tolerance: 2,
                selfish_opt: false,
                recovery: RecoveryStrategy::Migration,
            },
            0,
        ),
        vec![
            fail(2, 1, FailPoint::BeforeBarrier),
            fail(0, 4, FailPoint::BeforeBarrier),
        ],
    );
    assert_eq!(rep.values, clean.values);
    assert_eq!(rep.recoveries.len(), 2);
}

#[test]
fn incremental_checkpoint_recovers_matching_results_vc() {
    let g = gen::power_law(1_000, 2.0, 6, 71);
    let cut = RandomVertexCut.partition(&g, 4);
    let clean = run(&g, &cut, cfg(4, FtMode::None, 0), vec![]);
    for iteration in [1, 4] {
        let rep = run(
            &g,
            &cut,
            cfg(
                4,
                FtMode::Checkpoint {
                    interval: 2,
                    incremental: true,
                },
                1,
            ),
            vec![fail(3, iteration, FailPoint::BeforeBarrier)],
        );
        assert_eq!(
            rep.values, clean.values,
            "vc incremental checkpoint at iter {iteration}"
        );
    }
}

//! Failure drill: kill a machine mid-run and watch each fault-tolerance
//! strategy recover — the paper's §6.9 case study, on your laptop.
//!
//! Runs PageRank four times on the same graph and partitioning:
//! without fault tolerance (the baseline), then with a machine failure at
//! iteration 6 recovered by Rebirth, by Migration, and by checkpoint
//! rollback. Prints the per-strategy recovery breakdown and the iteration
//! timeline, and verifies every recovered run reproduced the baseline's
//! results exactly.
//!
//! ```sh
//! cargo run --release --example failure_drill
//! ```

use std::sync::Arc;
use std::time::Duration;

use imitator::{run_edge_cut, FtMode, RecoveryStrategy, RunConfig, RunReport};
use imitator_algos::{PageRank, RankValue};
use imitator_cluster::{FailPoint, FailurePlan, NodeId};
use imitator_graph::gen;
use imitator_partition::{EdgeCut, EdgeCutPartitioner, HashEdgeCut};
use imitator_storage::{Dfs, DfsConfig};

const NODES: usize = 8;
const ITERS: u64 = 20;
const FAIL_AT: u64 = 6;

fn run(
    graph: &imitator_graph::Graph,
    cut: &EdgeCut,
    ft: FtMode,
    standbys: usize,
    inject: bool,
) -> RunReport<RankValue> {
    let failures = if inject {
        vec![FailurePlan {
            node: NodeId::new(2),
            iteration: FAIL_AT,
            point: FailPoint::BeforeBarrier,
        }]
    } else {
        Vec::new()
    };
    run_edge_cut(
        graph,
        cut,
        Arc::new(PageRank::new(0.85, 0.0)),
        RunConfig {
            num_nodes: NODES,
            max_iters: ITERS,
            ft,
            standbys,
            detection_delay: Duration::from_millis(20),
            ..RunConfig::default()
        },
        failures,
        Dfs::new(DfsConfig::hdfs_like()),
    )
}

fn describe(name: &str, report: &RunReport<RankValue>, baseline: Option<&RunReport<RankValue>>) {
    println!("\n=== {name} ===");
    println!(
        "  finished {} iterations in {:.3}s",
        report.iterations,
        report.elapsed.as_secs_f64()
    );
    for r in &report.recoveries {
        println!(
            "  recovery ({}, {} node(s)): reload {:.1} ms, reconstruct {:.1} ms, replay {:.1} ms — total {:.1} ms, {} vertices / {} edges recovered",
            r.strategy,
            r.failed_nodes,
            r.reload.as_secs_f64() * 1e3,
            r.reconstruct.as_secs_f64() * 1e3,
            r.replay.as_secs_f64() * 1e3,
            r.total().as_secs_f64() * 1e3,
            r.vertices_recovered,
            r.edges_recovered
        );
    }
    if let Some(base) = baseline {
        let identical = report
            .values
            .iter()
            .zip(&base.values)
            .all(|(a, b)| a.rank.to_bits() == b.rank.to_bits());
        println!(
            "  results vs baseline: {}",
            if identical {
                "bit-identical ✓"
            } else {
                "DIVERGED ✗"
            }
        );
    }
    // Compact timeline: when did each iteration commit?
    let line: Vec<String> = report
        .timeline
        .iter()
        .map(|(i, t)| format!("{i}@{:.2}s", t.as_secs_f64()))
        .collect();
    println!("  timeline: {}", line.join(" "));
}

fn main() {
    let graph = gen::Dataset::LJournal.generate(0.01, 42);
    println!("graph: {}", graph.stats());
    let cut = HashEdgeCut.partition(&graph, NODES);

    let base = run(&graph, &cut, FtMode::None, 0, false);
    describe("BASE (no fault tolerance, no failure)", &base, None);

    let rep = |recovery| FtMode::Replication {
        tolerance: 1,
        selfish_opt: true,
        recovery,
    };

    let rebirth = run(&graph, &cut, rep(RecoveryStrategy::Rebirth), 1, true);
    describe(
        "REP/Rebirth (node 2 dies at iteration 6, standby takes over)",
        &rebirth,
        Some(&base),
    );

    let migration = run(&graph, &cut, rep(RecoveryStrategy::Migration), 0, true);
    describe(
        "REP/Migration (node 2 dies at iteration 6, survivors absorb it)",
        &migration,
        Some(&base),
    );

    let ckpt = run(
        &graph,
        &cut,
        FtMode::Checkpoint {
            interval: 4,
            incremental: false,
        },
        1,
        true,
    );
    describe(
        "CKPT/4 (snapshot every 4 iterations, rollback + replay)",
        &ckpt,
        Some(&base),
    );

    println!("\nsummary (recovery wall time):");
    for (name, r) in [
        ("rebirth", &rebirth),
        ("migration", &migration),
        ("ckpt/4", &ckpt),
    ] {
        let total: f64 = r.recoveries.iter().map(|x| x.total().as_secs_f64()).sum();
        println!("  {name:<10} {:.1} ms", total * 1e3);
    }
}

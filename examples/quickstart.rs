//! Quickstart: run PageRank on a simulated 8-node cluster with
//! replication-based fault tolerance, and inspect what it cost.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use imitator::{run_edge_cut, FtMode, RecoveryStrategy, RunConfig};
use imitator_algos::PageRank;
use imitator_graph::gen;
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};
use imitator_storage::{Dfs, DfsConfig};

fn main() {
    // 1. A synthetic social-network-like graph (LJournal stand-in, small).
    let graph = gen::Dataset::LJournal.generate(0.01, 42);
    let stats = graph.stats();
    println!("graph: {stats}");

    // 2. Partition it across 8 simulated machines with the default
    //    hash-based edge-cut (what Cyclops does).
    let nodes = 8;
    let cut = HashEdgeCut.partition(&graph, nodes);
    println!(
        "partitioned: {} nodes, replication factor {:.2}, {:.1}% of vertices have no replica",
        nodes,
        cut.replication_factor(),
        100.0 * cut.fraction_without_replicas()
    );

    // 3. Run 20 PageRank iterations under Imitator's replication-based
    //    fault tolerance (1 failure tolerated, selfish optimisation on).
    let cfg = RunConfig {
        num_nodes: nodes,
        max_iters: 20,
        ft: FtMode::Replication {
            tolerance: 1,
            selfish_opt: true,
            recovery: RecoveryStrategy::Rebirth,
        },
        standbys: 1,
        ..RunConfig::default()
    };
    let report = run_edge_cut(
        &graph,
        &cut,
        Arc::new(PageRank::new(0.85, 0.0)),
        cfg,
        Vec::new(), // no failures this time — see failure_drill.rs
        Dfs::new(DfsConfig::hdfs_like()),
    );

    // 4. Results: the ten highest-ranked vertices.
    let mut ranked: Vec<(usize, f64)> = report
        .values
        .iter()
        .enumerate()
        .map(|(i, v)| (i, v.rank))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "\ntop 10 vertices by rank after {} iterations:",
        report.iterations
    );
    for (vid, rank) in ranked.into_iter().take(10) {
        println!("  v{vid:<8} rank {rank:.4}");
    }

    // 5. What fault tolerance cost (the paper's headline numbers).
    println!("\nfault-tolerance bookkeeping:");
    println!(
        "  extra FT replicas created: {} ({:.3}% of vertices)",
        report.extra_replicas,
        100.0 * report.extra_replicas as f64 / stats.num_vertices as f64
    );
    println!(
        "  sync records: {} total, {} for fault tolerance only ({:.2}%)",
        report.comm.messages,
        report.ft_comm.messages,
        100.0 * report.ft_comm.message_ratio(&report.comm)
    );
    println!(
        "  wall time: {:.3}s over {} iterations (avg {:.1} ms/iter)",
        report.elapsed.as_secs_f64(),
        report.iterations,
        report.avg_iteration().as_secs_f64() * 1e3
    );
    println!(
        "  cluster memory: {:.1} MiB across {} nodes",
        report.total_mem_bytes() as f64 / (1024.0 * 1024.0),
        report.mem_bytes.len()
    );
}

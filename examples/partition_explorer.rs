//! Partition explorer: how the choice of graph partitioning drives the cost
//! of replication-based fault tolerance (§6.6 and §6.10 of the paper).
//!
//! For one dataset stand-in, compares the two edge-cut partitioners
//! (hash, Fennel) on the Cyclops engine and the three vertex-cut
//! partitioners (random, grid, hybrid) on the PowerLyra engine: replication
//! factor, extra FT replicas, FT message share, and runtime.
//!
//! ```sh
//! cargo run --release --example partition_explorer
//! ```

use std::sync::Arc;

use imitator::{run_edge_cut, run_vertex_cut, FtMode, RecoveryStrategy, RunConfig};
use imitator_algos::PageRank;
use imitator_graph::Graph;
use imitator_partition::{
    EdgeCutPartitioner, FennelEdgeCut, GridVertexCut, HashEdgeCut, HybridVertexCut,
    RandomVertexCut, VertexCutPartitioner,
};
use imitator_storage::{Dfs, DfsConfig};

const NODES: usize = 8;
const ITERS: u64 = 10;

fn ft() -> FtMode {
    FtMode::Replication {
        tolerance: 1,
        selfish_opt: true,
        recovery: RecoveryStrategy::Migration,
    }
}

fn cfg() -> RunConfig {
    RunConfig {
        num_nodes: NODES,
        max_iters: ITERS,
        ft: ft(),
        ..RunConfig::default()
    }
}

fn row(
    name: &str,
    rf: f64,
    no_replica_frac: f64,
    report: &imitator::RunReport<imitator_algos::RankValue>,
) {
    println!(
        "  {name:<8} rf {rf:>5.2}   w/o-replica {:>5.1}%   extra-FT {:>6}   ft-msgs {:>5.2}%   wall {:>7.3}s",
        100.0 * no_replica_frac,
        report.extra_replicas,
        100.0 * report.ft_comm.message_ratio(&report.comm),
        report.elapsed.as_secs_f64()
    );
}

fn main() {
    let graph: Graph = imitator_graph::gen::Dataset::Twitter.generate(0.001, 7);
    println!("graph: {}", graph.stats());
    let prog = Arc::new(PageRank::new(0.85, 0.0));
    let dfs = || Dfs::new(DfsConfig::instant());

    println!("\nedge-cut (Cyclops engine):");
    for (name, cut) in [
        ("hash", HashEdgeCut.partition(&graph, NODES)),
        ("fennel", FennelEdgeCut::default().partition(&graph, NODES)),
    ] {
        let report = run_edge_cut(&graph, &cut, Arc::clone(&prog), cfg(), Vec::new(), dfs());
        row(
            name,
            cut.replication_factor(),
            cut.fraction_without_replicas(),
            &report,
        );
    }

    println!("\nvertex-cut (PowerLyra engine):");
    let vcuts: [(&str, imitator_partition::VertexCut); 3] = [
        ("random", RandomVertexCut.partition(&graph, NODES)),
        ("grid", GridVertexCut.partition(&graph, NODES)),
        (
            "hybrid",
            HybridVertexCut::default().partition(&graph, NODES),
        ),
    ];
    for (name, cut) in vcuts {
        let report = run_vertex_cut(&graph, &cut, Arc::clone(&prog), cfg(), Vec::new(), dfs());
        row(
            name,
            cut.replication_factor(),
            cut.fraction_without_replicas(),
            &report,
        );
    }

    println!(
        "\nreading the table: a better partitioner (Fennel, hybrid) leaves fewer free\n\
         replicas for Imitator to reuse, so the *relative* fault-tolerance overhead\n\
         rises slightly (Fig. 10/14) — while the absolute runtime still improves."
    );
}

//! Shortest paths on a road network that loses a machine mid-route.
//!
//! SSSP is the paper's activation-front workload: at any moment only the
//! frontier computes, so recovery must reconstruct *activation state*, not
//! just values (§5.1.3 replay). This example runs SSSP over the RoadCA
//! stand-in (log-normally weighted grid, §6.1), kills a node while the
//! front is mid-sweep, recovers by Migration, and verifies distances.
//!
//! ```sh
//! cargo run --release --example shortest_paths
//! ```

use std::sync::Arc;

use imitator::{run_edge_cut, FtMode, RecoveryStrategy, RunConfig};
use imitator_algos::Sssp;
use imitator_cluster::{FailPoint, FailurePlan, NodeId};
use imitator_graph::{gen, Vid};
use imitator_partition::{EdgeCutPartitioner, HashEdgeCut};
use imitator_storage::{Dfs, DfsConfig};

const NODES: usize = 6;

fn main() {
    let graph = gen::road_like(20_000, 11);
    println!("road network: {}", graph.stats());
    let source = Vid::new(0);
    let cut = HashEdgeCut.partition(&graph, NODES);

    let cfg = RunConfig {
        num_nodes: NODES,
        max_iters: 2_000, // the activation front stops on its own
        ft: FtMode::Replication {
            tolerance: 1,
            selfish_opt: false, // distances are running minima: not recomputable
            recovery: RecoveryStrategy::Migration,
        },
        ..RunConfig::default()
    };
    let report = run_edge_cut(
        &graph,
        &cut,
        Arc::new(Sssp::from_source(source)),
        cfg,
        vec![FailurePlan {
            node: NodeId::new(3),
            iteration: 25, // mid-front
            point: FailPoint::BeforeBarrier,
        }],
        Dfs::new(DfsConfig::instant()),
    );

    println!(
        "front swept the network in {} supersteps despite losing node 3 at step 25",
        report.iterations
    );
    for r in &report.recoveries {
        println!(
            "recovery: {} promoted/granted {} vertices, rewired {} edges in {:.1} ms",
            r.strategy,
            r.vertices_recovered,
            r.edges_recovered,
            r.total().as_secs_f64() * 1e3
        );
    }

    let expected = imitator_algos::sssp_reference(&graph, source);
    assert_eq!(
        report.values, expected,
        "distances diverged from Bellman-Ford"
    );
    println!("distances verified against sequential Bellman-Ford ✓");

    let reached = report.values.iter().filter(|d| d.is_finite()).count();
    let max = report
        .values
        .iter()
        .filter(|d| d.is_finite())
        .fold(0.0f32, |a, &b| a.max(b));
    println!(
        "{} of {} intersections reachable; farthest at distance {:.2}",
        reached,
        report.values.len(),
        max
    );
    println!("sample distances from v0:");
    for vid in [1usize, 100, 2_000, 10_000, 19_000] {
        if vid < report.values.len() {
            println!("  v{vid:<6} {:>8.3}", report.values[vid]);
        }
    }
}

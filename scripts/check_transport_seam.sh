#!/usr/bin/env bash
# Transport-seam guard for the pluggable wire layer.
#
# All inter-node communication — sends, drains, barriers, standby dispatch
# and liveness — goes through the `Transport`/`Pipe` traits in
# crates/cluster/src/transport.rs. Nothing outside the cluster crate may
# name a crossbeam type: the moment a runner or bench reaches for a raw
# channel, it has punched a hole in the seam and the lossy/TCP backends
# (and every delivery guarantee the recovery protocol relies on) silently
# stop covering that traffic.
set -euo pipefail

cd "$(dirname "$0")/.."

# The intra-node worker pool dispatches chunk jobs to compute threads on
# one machine over a crossbeam channel; that traffic never crosses the
# wire seam, so the pool is the one sanctioned user outside the cluster
# crate.
ALLOW='crates/engine/src/pool.rs'

hits=$(grep -rn "crossbeam" --include='*.rs' src tests examples crates 2>/dev/null |
    grep -v '^crates/cluster/' |
    grep -v "^${ALLOW}:" || true)

if [ -n "$hits" ]; then
    echo "error: crossbeam named outside the cluster transport seam:" >&2
    echo "$hits" >&2
    echo "Inter-node communication must go through the Transport/Pipe" >&2
    echo "traits (crates/cluster/src/transport.rs) so every wire backend" >&2
    echo "— channel, lossy, TCP — covers it." >&2
    exit 1
fi

echo "ok: no crossbeam types escape crates/cluster (pool.rs intra-node use excepted)."

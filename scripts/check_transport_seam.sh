#!/usr/bin/env bash
# Transport-seam guard for the pluggable wire layer.
#
# All inter-node communication — sends, drains, barriers, standby dispatch
# and liveness — goes through the `Transport`/`Pipe` traits in
# crates/cluster/src/transport.rs. Nothing outside the cluster crate may
# name a crossbeam type: the moment a runner or bench reaches for a raw
# channel, it has punched a hole in the seam and the lossy/TCP backends
# (and every delivery guarantee the recovery protocol relies on) silently
# stop covering that traffic.
set -euo pipefail

cd "$(dirname "$0")/.."

# The intra-node worker pool dispatches chunk jobs to compute threads on
# one machine over a crossbeam channel; that traffic never crosses the
# wire seam, so the pool is the one sanctioned user outside the cluster
# crate.
ALLOW='crates/engine/src/pool.rs'

hits=$(grep -rn "crossbeam" --include='*.rs' src tests examples crates 2>/dev/null |
    grep -v '^crates/cluster/' |
    grep -v "^${ALLOW}:" || true)

if [ -n "$hits" ]; then
    echo "error: crossbeam named outside the cluster transport seam:" >&2
    echo "$hits" >&2
    echo "Inter-node communication must go through the Transport/Pipe" >&2
    echo "traits (crates/cluster/src/transport.rs) so every wire backend" >&2
    echo "— channel, lossy, TCP — covers it." >&2
    exit 1
fi

echo "ok: no crossbeam types escape crates/cluster (pool.rs intra-node use excepted)."

# Coordinator-liveness guard for the failure detector.
#
# Who is alive is decided in exactly one place: the FailureDetector
# (crates/cluster/src/detector.rs) observes evidence — heartbeats, close
# events, oracle reports — and the coordinator's pump funnel applies its
# verdicts via `mark_failed`. If a runner, bench or test writes liveness
# directly, suspicion can no longer be retracted before the fence and the
# false-positive-safety argument (DESIGN.md §4.8) is void.
LIVENESS='mark_failed|report_death|observe_hb|observe_close|on_revive'

hits=$(grep -rnE "\.(${LIVENESS})\(" --include='*.rs' src tests examples \
    crates 2>/dev/null |
    grep -v '^crates/cluster/' || true)

if [ -n "$hits" ]; then
    echo "error: coordinator liveness written outside crates/cluster:" >&2
    echo "$hits" >&2
    echo "Failure evidence must flow through the FailureDetector" >&2
    echo "(crates/cluster/src/detector.rs); the coordinator pump is the" >&2
    echo "only caller of mark_failed. Inject failures via FailurePlan or" >&2
    echo "the NodeCtx die/crash paths instead." >&2
    exit 1
fi

# Inside the cluster crate, `mark_failed` is coord.rs's funnel (scan +
# report_death + its unit tests); everything else — transport backends,
# the node context, the injector — must hand evidence to the detector.
hits=$(grep -rn '\.mark_failed(' --include='*.rs' crates/cluster/src 2>/dev/null |
    grep -v '^crates/cluster/src/coord.rs:' |
    grep -v '^crates/cluster/src/cluster.rs:' || true)

if [ -n "$hits" ]; then
    echo "error: mark_failed called outside the coordinator's pump funnel:" >&2
    echo "$hits" >&2
    exit 1
fi

# cluster.rs may touch mark_failed only from its #[cfg(test)] module (the
# barrier tests simulate verdicts); a call from the node context proper
# would bypass suspicion.
if awk '/#\[cfg\(test\)\]/{exit} /\.mark_failed\(/{found=1} END{exit !found}' \
    crates/cluster/src/cluster.rs; then
    echo "error: non-test mark_failed call in crates/cluster/src/cluster.rs" >&2
    echo "Node-context code must report evidence to the FailureDetector," >&2
    echo "not write coordinator liveness directly." >&2
    exit 1
fi

echo "ok: coordinator liveness flows only through the detector pump funnel."

#!/usr/bin/env bash
# Duplication guard for the model-generic driver refactor.
#
# The edge-cut and vertex-cut runners used to each carry a full copy of the
# superstep loop, barrier/failure handling, checkpointing and the
# Rebirth/Migration recovery protocol. That logic now lives once in
# crates/core/src/driver.rs and crates/core/src/recovery.rs, and the runners
# are thin ComputeModel implementations. This guard keeps it that way: if
# the two runners together grow past the budget, shared logic is probably
# being re-duplicated into them — move it into the driver or the recovery
# state machine instead.
set -euo pipefail

cd "$(dirname "$0")/.."

# Re-baselined per PR. History of the honest floor:
#   1200 — post-refactor thin runners.
#   1560 — cascading-failure recovery hooks + pipelined supersteps added
#          genuinely model-specific code (EC edge rewiring vs VC gather
#          shipping); the shared stage/ship/flush loop lives in
#          driver::pump_update_syncs.
#   1650 — parallel recovery: the EC rebirth replay now chunks its
#          activation scan on the worker pool and carries the selfish-master
#          RAW-independence guard (EC-only semantics — VC has no activation
#          replay). The chunk merge and the pool plumbing stay in
#          recovery.rs/driver.rs; only the EC-specific scan moved here.
#   1655 — pluggable transport: the TCP backend ships gather accumulators
#          through the WireCodec, so the VC runner's three generic items
#          each carry a one-line `P::Accum: Encode + Decode` bound
#          (rustfmt puts every where-predicate on its own line). Bounds,
#          not logic — the wire layer itself lives in crates/cluster.
BUDGET=1655
EC=crates/core/src/runner_ec.rs
VC=crates/core/src/runner_vc.rs

ec_lines=$(wc -l < "$EC")
vc_lines=$(wc -l < "$VC")
total=$((ec_lines + vc_lines))

echo "runner_ec.rs: ${ec_lines} lines"
echo "runner_vc.rs: ${vc_lines} lines"
echo "combined:     ${total} lines (budget ${BUDGET})"

if [ "$total" -gt "$BUDGET" ]; then
    echo "error: combined runner size ${total} exceeds the ${BUDGET}-line budget:" >&2
    echo "  ${EC}: ${ec_lines} lines" >&2
    echo "  ${VC}: ${vc_lines} lines" >&2
    echo "Model-agnostic logic belongs in crates/core/src/driver.rs or" >&2
    echo "crates/core/src/recovery.rs, not in the per-model runners." >&2
    exit 1
fi

echo "ok: runners stay thin."

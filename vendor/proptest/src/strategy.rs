//! The [`Strategy`] trait and its combinators.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SampleRange};

/// The random source threaded through strategies (deterministic per case).
pub type TestRng = rand::rngs::StdRng;

/// A recipe for generating values of one type.
///
/// `try_gen` returns `None` when a `prop_filter` (at any nesting depth)
/// rejects the candidate; the runner retries with fresh randomness.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value, or `None` on filter rejection.
    fn try_gen(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values with `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values for which `f` returns `false`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            _whence: whence.into(),
            f,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn try_gen(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).try_gen(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn try_gen(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).try_gen(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn try_gen(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn try_gen(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.try_gen(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    _whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn try_gen(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.try_gen(rng).filter(|v| (self.f)(v))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: fmt::Debug> Union<V> {
    /// Creates a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn try_gen(&self, rng: &mut TestRng) -> Option<V> {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].try_gen(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn try_gen(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn try_gen(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn try_gen(&self, rng: &mut TestRng) -> Option<$t> {
                Some(SampleRange::sample_single(self.clone(), rng))
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn try_gen(&self, rng: &mut TestRng) -> Option<Self::Value> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Some(($($name.try_gen(rng)?,)+))
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// A size specification for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub lo: usize,
    /// Inclusive upper bound.
    pub hi: usize,
}

impl SizeRange {
    pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

//! `any::<T>()` — full-range generation for primitive types.

use std::fmt;
use std::marker::PhantomData;

use rand::Rng;

use crate::strategy::{Strategy, TestRng};

/// Types with a canonical full-range generation strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws one arbitrary value (full domain, including extremes).
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

// Floats cover *all* bit patterns (NaN, infinities, subnormals) so codec
// tests exercise bitwise round-trips, matching upstream's any::<f64>.
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII, occasionally any scalar value.
        if rng.gen_bool(0.9) {
            (rng.gen_range(0x20u32..0x7f)) as u8 as char
        } else {
            char::from_u32(rng.gen_range(0u32..=0x10_ffff)).unwrap_or('\u{fffd}')
        }
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    )+};
}
impl_arbitrary_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Strategy yielding arbitrary values of `T` (see [`any`]).
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn try_gen(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

//! The `option::of` strategy.

use rand::Rng;

use crate::strategy::{Strategy, TestRng};

/// Strategy for `Option<T>`: `None` about a quarter of the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn try_gen(&self, rng: &mut TestRng) -> Option<Self::Value> {
        if rng.gen_bool(0.25) {
            Some(None)
        } else {
            Some(Some(self.inner.try_gen(rng)?))
        }
    }
}

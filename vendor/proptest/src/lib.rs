//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! small, dependency-free property-testing harness exposing the exact API
//! subset its test suites use: the [`proptest!`] / `prop_assert*` macros,
//! [`strategy::Strategy`] with `prop_map` / `prop_filter` / `boxed`,
//! [`arbitrary::any`], integer/float range strategies, regex-literal string
//! strategies (a small pattern subset), [`collection::vec`] /
//! [`collection::hash_map`], [`option::of`], [`prop_oneof!`] and
//! [`test_runner::Config`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the generated input via
//!   `Debug` and panics; it is not minimized.
//! * **Deterministic seeding.** Case N of test T always sees the same
//!   input (seeded from the test name), so failures reproduce without a
//!   regression file. `.proptest-regressions` files are ignored.
//! * The default case count is 64 (upstream: 256) to keep the suite quick;
//!   override per-test with `ProptestConfig::with_cases` or globally with
//!   the `PROPTEST_CASES` environment variable, both of which upstream
//!   also honours.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares deterministic property tests (see crate docs for semantics).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( @cfg($cfg:expr) ) => {};
    ( @cfg($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let strategy = ($($strat,)+);
            $crate::test_runner::run(
                $cfg,
                stringify!($name),
                &strategy,
                |($($pat,)+)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), left, right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), format!($($fmt)+), left, right,
                ),
            ));
        }
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// Discards (does not fail) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Picks uniformly among the listed strategies (all must yield one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

//! String strategies from regex-like literals.
//!
//! Upstream proptest treats `&str` as "strategy of strings matching this
//! regex". This stand-in supports the subset the workspace's tests use:
//! literal characters, `.`, character classes like `[a-z0-9_]` (ranges and
//! singletons, no negation), escapes, and the quantifiers `*`, `+`, `?`,
//! `{m}`, `{m,n}`. Unsupported syntax panics with a clear message rather
//! than silently generating wrong strings.

use rand::Rng;

use crate::strategy::{Strategy, TestRng};

enum Atom {
    Any,
    Lit(char),
    Class(Vec<(char, char)>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

// Unbounded quantifiers (`*`, `+`) are capped at this repeat count.
const UNBOUNDED_CAP: usize = 8;

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Any,
            '\\' => Atom::Lit(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            ),
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                    if lo == ']' {
                        break;
                    }
                    if lo == '^' && ranges.is_empty() {
                        panic!("negated classes are not supported (pattern {pattern:?})");
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.next() {
                            Some(']') | None => {
                                panic!("unterminated range in pattern {pattern:?}")
                            }
                            Some(hi) => ranges.push((lo, hi)),
                        }
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                Atom::Class(ranges)
            }
            '(' | ')' | '|' => {
                panic!("groups/alternation are not supported (pattern {pattern:?})")
            }
            other => Atom::Lit(other),
        };
        let (min, max) = match chars.peek() {
            Some('*') => {
                chars.next();
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                chars.next();
                (1, UNBOUNDED_CAP)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    body.push(c);
                }
                let parse_n = |s: &str| {
                    s.trim()
                        .parse::<usize>()
                        .unwrap_or_else(|_| panic!("bad repetition in pattern {pattern:?}"))
                };
                match body.split_once(',') {
                    Some((m, n)) => (parse_n(m), parse_n(n)),
                    None => {
                        let n = parse_n(&body);
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

// Pool for `.`: printable ASCII plus a few multi-byte scalars so UTF-8
// handling gets exercised.
const EXTRA: [char; 4] = ['é', 'Δ', '中', '🦀'];

fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Any => {
            if rng.gen_bool(0.9) {
                rng.gen_range(0x20u32..0x7f) as u8 as char
            } else {
                EXTRA[rng.gen_range(0..EXTRA.len())]
            }
        }
        Atom::Lit(c) => *c,
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
            char::from_u32(rng.gen_range(lo as u32..=hi as u32)).unwrap_or(lo)
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn try_gen(&self, rng: &mut TestRng) -> Option<String> {
        let pieces = parse(self);
        let mut out = String::new();
        for p in &pieces {
            let n = rng.gen_range(p.min..=p.max);
            for _ in 0..n {
                out.push(gen_atom(&p.atom, rng));
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(1)
    }

    #[test]
    fn class_with_repetition() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z]{1,8}".try_gen(&mut r).unwrap();
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn dot_star_varies_length() {
        let mut r = rng();
        let lens: Vec<usize> = (0..50)
            .map(|_| ".*".try_gen(&mut r).unwrap().chars().count())
            .collect();
        assert!(lens.contains(&0));
        assert!(lens.iter().any(|&l| l > 2));
    }

    #[test]
    fn literals_and_escapes() {
        let mut r = rng();
        assert_eq!("abc".try_gen(&mut r).unwrap(), "abc");
        assert_eq!(r"a\.b".try_gen(&mut r).unwrap(), "a.b");
    }

    #[test]
    fn singleton_class() {
        let mut r = rng();
        for _ in 0..20 {
            let s = "[a-d]".try_gen(&mut r).unwrap();
            assert_eq!(s.len(), 1);
            assert!(('a'..='d').contains(&s.chars().next().unwrap()));
        }
    }
}

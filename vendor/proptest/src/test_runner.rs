//! Deterministic case runner and its configuration.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::SeedableRng;

use crate::strategy::{Strategy, TestRng};

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed; the whole test fails.
    Fail(String),
    /// The case was discarded (`prop_assume!`); another input is tried.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A discard with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// Runs `test` against `config.cases` generated inputs.
///
/// Deterministic: case `i` of a given test name always sees the same input.
/// On failure the generated input is reported via `Debug` and the runner
/// panics (no shrinking).
pub fn run<S, F>(config: Config, name: &str, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let cases = env_cases().unwrap_or(config.cases).max(1);
    let max_rejects = cases.saturating_mul(256).max(4096);
    let mut rejects: u32 = 0;
    let mut passed: u32 = 0;
    let mut stream: u64 = 0;
    while passed < cases {
        // Each attempt gets its own seed so filter retries make progress.
        let mut rng =
            TestRng::seed_from_u64(fnv1a(name) ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        stream += 1;
        let Some(value) = strategy.try_gen(&mut rng) else {
            rejects += 1;
            assert!(
                rejects <= max_rejects,
                "[{name}] too many generator rejections ({rejects}) — \
                 filter predicate rarely satisfied"
            );
            continue;
        };
        let repr = format!("{value:?}");
        match catch_unwind(AssertUnwindSafe(|| test(value))) {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "[{name}] too many rejected cases ({rejects}) — \
                     prop_assume! rarely satisfied"
                );
            }
            Ok(Err(TestCaseError::Fail(reason))) => {
                panic!(
                    "[{name}] property failed after {passed} passing case(s): {reason}\n\
                     input: {repr}"
                );
            }
            Err(payload) => {
                eprintln!(
                    "[{name}] property panicked after {passed} passing case(s)\ninput: {repr}"
                );
                resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn deterministic_inputs_per_case() {
        let mut first: Vec<u32> = Vec::new();
        let mut second: Vec<u32> = Vec::new();
        for out in [&mut first, &mut second] {
            let sink = std::cell::RefCell::new(Vec::new());
            run(Config::with_cases(10), "det", &(0u32..1000), |v| {
                sink.borrow_mut().push(v);
                Ok(())
            });
            *out = sink.into_inner();
        }
        assert_eq!(first, second);
        assert_eq!(first.len(), 10);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_case_panics_with_input() {
        run(Config::with_cases(50), "fails", &(0u32..10), |v| {
            if v >= 5 {
                return Err(TestCaseError::fail("v too big"));
            }
            Ok(())
        });
    }

    #[test]
    fn rejects_are_retried() {
        let count = std::cell::Cell::new(0u32);
        run(Config::with_cases(20), "rej", &(0u32..100), |v| {
            if v % 2 == 0 {
                return Err(TestCaseError::reject("odd only"));
            }
            count.set(count.get() + 1);
            Ok(())
        });
        assert_eq!(count.get(), 20);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_single_binding(x in 0u32..100) {
            prop_assert!(x < 100);
        }

        #[test]
        fn macro_multi_binding(a in any::<u8>(), b in 1usize..4, c in any::<bool>()) {
            prop_assert!(usize::from(a) < 256 && b < 4);
            prop_assume!(c || a % 2 == 0);
        }

        #[test]
        fn macro_tuple_pattern((a, b) in (0u32..10, 0u32..10)) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + b + 1);
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(0u32..50, 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&x| x < 50));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }
    }

    #[test]
    fn filter_and_map_pipeline() {
        let strat = (0u32..100)
            .prop_map(|x| x * 2)
            .prop_filter("multiple of 4", |x| x % 4 == 0);
        run(Config::with_cases(20), "pipeline", &strat, |v| {
            if v % 4 != 0 {
                return Err(TestCaseError::fail("filter leaked"));
            }
            Ok(())
        });
    }
}

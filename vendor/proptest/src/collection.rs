//! Collection strategies: `vec` and `hash_map`.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use crate::strategy::{SizeRange, Strategy, TestRng};

/// Strategy for `Vec`s of values from `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn try_gen(&self, rng: &mut TestRng) -> Option<Self::Value> {
        let len = self.size.sample(rng);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.try_gen(rng)?);
        }
        Some(out)
    }
}

/// Strategy for `HashMap`s with `size` entries drawn from `key` / `value`.
///
/// Duplicate generated keys collapse, so like upstream the map may end up
/// slightly smaller than the sampled size.
pub fn hash_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> HashMapStrategy<K, V> {
    HashMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`hash_map`].
pub struct HashMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for HashMapStrategy<K, V>
where
    K::Value: Hash + Eq + fmt::Debug,
{
    type Value = HashMap<K::Value, V::Value>;
    fn try_gen(&self, rng: &mut TestRng) -> Option<Self::Value> {
        let len = self.size.sample(rng);
        let mut out = HashMap::with_capacity(len);
        for _ in 0..len {
            out.insert(self.key.try_gen(rng)?, self.value.try_gen(rng)?);
        }
        Some(out)
    }
}

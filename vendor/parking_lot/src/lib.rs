//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (guards come straight out of `lock()`/`read()`/`write()`, no `Result`).
//! Poisoned std locks are recovered transparently: a panic while holding a
//! lock here never cascades into unrelated threads, matching `parking_lot`
//! semantics closely enough for this workspace's coordinator and DFS.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A non-poisoning mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            g: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(sync::PoisonError::into_inner),
            ),
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: `&mut self` guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner `Option` exists so [`Condvar::wait`] can temporarily take the
/// std guard by value; it is `Some` at every other moment.
pub struct MutexGuard<'a, T: ?Sized> {
    g: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.g.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.g.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable usable with [`MutexGuard`] (parking_lot takes the
/// guard by `&mut`, unlike std which consumes and returns it).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded lock and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.g.take().expect("guard present outside wait");
        guard.g = Some(
            self.inner
                .wait(g)
                .unwrap_or_else(sync::PoisonError::into_inner),
        );
    }

    /// Atomically releases the guarded lock and blocks until notified or
    /// `timeout` elapses. Returns `true` when the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let g = guard.g.take().expect("guard present outside wait");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.g = Some(g);
        res.timed_out()
    }

    /// Wakes every thread blocked in [`Condvar::wait`].
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wakes one thread blocked in [`Condvar::wait`].
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            g: self
                .inner
                .read()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            g: self
                .inner
                .write()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    g: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.g
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    g: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.g
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        assert!(t.join().unwrap());
    }

    #[test]
    fn wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        assert!(cv.wait_for(&mut ready, Duration::from_millis(5)));
        drop(ready);
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait_for(&mut ready, Duration::from_secs(10));
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        *lock.lock() = true;
        cv.notify_all();
        assert!(t.join().unwrap());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() = 5; // must not panic
        assert_eq!(*m.lock(), 5);
    }
}

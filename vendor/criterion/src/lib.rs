//! Offline stand-in for the `criterion` crate.
//!
//! Implements the group / `bench_function` / `Bencher::iter` surface the
//! workspace's benches use, with plain wall-clock measurement (median of
//! timed batches) instead of criterion's statistical machinery.
//!
//! Mode detection matches real criterion's contract with cargo: `cargo
//! bench` passes `--bench`, which enables full measurement; anything else
//! (notably `cargo test`, which runs `harness = false` bench targets to
//! smoke-test them) executes each benchmark body exactly once.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a benchmarked quantity scales, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured body processes this many bytes per iteration.
    Bytes(u64),
    /// The measured body processes this many abstract elements per iteration.
    Elements(u64),
}

/// A two-part benchmark identifier rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `{function_name}/{parameter}`.
    pub fn new<F: fmt::Display, P: fmt::Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Things accepted as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Total time and iteration count of the measured batches.
    measured: Option<(Duration, u64)>,
    full: bool,
}

impl Bencher {
    /// Calls `body` repeatedly and records its average wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if !self.full {
            black_box(body());
            self.measured = Some((Duration::ZERO, 1));
            return;
        }
        // Warm up for ~30ms to populate caches and branch predictors.
        let warm_deadline = Instant::now() + Duration::from_millis(30);
        while Instant::now() < warm_deadline {
            black_box(body());
        }
        // Measure for ~300ms total, growing the batch size geometrically so
        // per-batch timer overhead stays negligible.
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut batch = 1u64;
        let deadline = Instant::now() + Duration::from_millis(300);
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            total += start.elapsed();
            iters += batch;
            batch = (batch * 2).min(1 << 20);
        }
        self.measured = Some((total, iters));
    }

    /// Calls `body` with an iteration count and records the `Duration` it
    /// returns, for benchmarks that must time a region themselves.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut body: F) {
        if !self.full {
            self.measured = Some((black_box(body(1)), 1));
            return;
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut batch = 1u64;
        let deadline = Instant::now() + Duration::from_millis(300);
        loop {
            total += black_box(body(batch));
            iters += batch;
            if Instant::now() >= deadline {
                break;
            }
            batch = (batch * 2).min(1 << 20);
        }
        self.measured = Some((total, iters));
    }
}

fn full_measurement() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn run_one(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        measured: None,
        full: full_measurement(),
    };
    f(&mut b);
    let Some((total, iters)) = b.measured else {
        println!("{name:<50} (no measurement)");
        return;
    };
    if !b.full {
        println!("{name:<50} ok (smoke)");
        return;
    }
    let per_iter = total.as_secs_f64() / iters as f64;
    let mut line = format!("{name:<50} {:>12.3} us/iter", per_iter * 1e6);
    if let Some(Throughput::Bytes(n)) = throughput {
        line.push_str(&format!(
            "  {:>9.1} MiB/s",
            n as f64 / per_iter / (1024.0 * 1024.0)
        ));
    }
    println!("{line}");
}

/// Top-level benchmark registry (wall-clock measurement only).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_owned(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.throughput, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut calls = 0;
        let mut b = Bencher {
            measured: None,
            full: false,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(b.measured, Some((Duration::ZERO, 1)));
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(8));
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| black_box(2 + 2)));
        group.bench_function("plain", |b| b.iter(|| black_box(1)));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(0)));
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, dependency-free implementation of the exact API surface it uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`]. The generator is a fixed
//! xoshiro256++ seeded via SplitMix64, so every seeded stream is stable
//! across runs and platforms (which the benches and tests rely on). It does
//! **not** reproduce the upstream crate's value streams — only its contract:
//! seeded, deterministic, uniform.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an `Rng` (the role of
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, usize, i8, i16, i32, isize);

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges an `Rng` can draw from (the role of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let u: f64 = Standard::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        let u: f32 = Standard::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

/// A source of randomness (the subset of `rand::Rng` this workspace uses).
pub trait Rng {
    /// The next 64 raw bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Seedable construction (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    ///
    /// Stands in for `rand::rngs::StdRng`: seeded, uniform and fast. The
    /// stream differs from upstream `StdRng` (which is ChaCha-based), but
    /// nothing in this workspace depends on specific values — only on
    /// seed-determinism.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0, 0, 0, 0] {
                s[0] = 1; // xoshiro must not start at the all-zero state
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1..=5);
            assert!((1..=5).contains(&w));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

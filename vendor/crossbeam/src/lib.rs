//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel`'s unbounded MPMC channel on top of a
//! `Mutex<VecDeque>` + `Condvar`. Unlike `std::sync::mpsc`, both ends are
//! `Clone` and the receiver is `Sync`, which the cluster fabric relies on
//! (multiple hot-standby threads block on one shared receiver). Throughput
//! is far below real crossbeam but the simulated cluster exchanges a few
//! thousand envelopes per superstep, where lock-per-op is irrelevant.

#![forbid(unsafe_code)]

pub mod channel {
    //! Unbounded MPMC channels (`crossbeam-channel` API subset).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        cond: Condvar,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// Receivers currently parked in `cond.wait` — senders skip the
        /// condvar notification entirely when nobody is waiting, which is
        /// the common case for drain-style consumers.
        waiting: usize,
        /// A capacity-retaining buffer returned by [`Receiver::recycle`],
        /// handed back out by the next `drain_all` so steady-state draining
        /// swaps buffers instead of regrowing a fresh `VecDeque` each cycle.
        spare: Option<VecDeque<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// The sending half of an unbounded channel. Clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Clone freely; clones
    /// compete for messages (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                waiting: 0,
                spare: None,
            }),
            cond: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if every receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            let waiting = st.waiting > 0;
            drop(st);
            if waiting {
                self.shared.cond.notify_one();
            }
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.cond.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st.waiting += 1;
                st = self
                    .shared
                    .cond
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
                st.waiting -= 1;
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                st.waiting += 1;
                let (guard, _timed_out) = self
                    .shared
                    .cond
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
                st.waiting -= 1;
            }
        }

        /// Removes one queued message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Iterator draining the messages queued right now, never blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        /// Removes and returns every queued message in one O(1) swap: one
        /// lock acquisition for the whole batch instead of one per message
        /// (as `try_iter` costs), leaving the queue empty.
        pub fn drain_all(&self) -> VecDeque<T> {
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let spare = st.spare.take().unwrap_or_default();
            std::mem::replace(&mut st.queue, spare)
        }

        /// Returns a buffer obtained from [`Receiver::drain_all`] to the
        /// channel. The next drain hands it back out with its capacity
        /// intact, so a steady drain loop allocates nothing once the queue
        /// has reached its high-water mark.
        pub fn recycle(&self, mut buf: VecDeque<T>) {
            buf.clear();
            let mut st = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if st
                .spare
                .as_ref()
                .is_none_or(|s| s.capacity() < buf.capacity())
            {
                st.spare = Some(buf);
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// See [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = rx.try_iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn drain_all_empties_queue_in_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = rx.drain_all().into_iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
            assert!(rx.drain_all().is_empty());
            // The channel keeps working after a drain.
            tx.send(99).unwrap();
            assert_eq!(rx.try_recv(), Ok(99));
        }

        #[test]
        fn recycle_reuses_drained_capacity() {
            // Buffers ping-pong: a recycled buffer becomes the internal
            // queue at the next drain, so from the second cycle on the
            // high-water capacity circulates instead of being reallocated.
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            let d1 = rx.drain_all();
            let cap = d1.capacity();
            assert_eq!(d1.len(), 100);
            rx.recycle(d1);
            tx.send(7).unwrap();
            let d2 = rx.drain_all(); // installs the recycled buffer as queue
            assert_eq!(d2.iter().copied().collect::<Vec<i32>>(), vec![7]);
            rx.recycle(d2);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            let d3 = rx.drain_all();
            assert_eq!(d3.len(), 100);
            assert!(
                d3.capacity() >= cap,
                "high-water buffer must circulate back out ({} < {cap})",
                d3.capacity()
            );
        }

        #[test]
        fn blocked_receiver_still_woken_after_recycle() {
            let (tx, rx) = unbounded::<u32>();
            let t = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(Duration::from_millis(20));
            tx.send(42).unwrap();
            assert_eq!(t.join().unwrap(), 42);
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(5).is_err());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(3u8).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(3));
        }

        #[test]
        fn disconnected_when_senders_gone() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn mpmc_clones_compete_without_loss() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            let handles: Vec<_> = [rx, rx2]
                .into_iter()
                .map(|r| {
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = r.recv_timeout(Duration::from_millis(200)) {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<i32> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }
    }
}
